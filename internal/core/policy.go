// Package core implements the paper's primary contribution: the partition
// selection policies of Section 3.1. A policy observes pointer and data
// stores at the write barrier and, when the collector is triggered, picks
// the partition to collect.
//
// The package provides the two new policies the paper proposes
// (UpdatedPointer and WeightedPointer), its enhancement of the
// Yong/Naughton/Yu policy (MutatedPartition), the unenhanced YNY policy as
// an ablation (MutatedObjectYNY), and the three reference policies used to
// bound the design space (Random, MostGarbage, NoCollection).
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"odbgc/internal/heap"
)

// StoreContext describes one pointer store to a policy's write-barrier
// hook. All partition and weight values are captured at store time, before
// the store mutates anything the policy might inspect.
type StoreContext struct {
	// Src is the object written into; SrcPart is its partition.
	Src     heap.OID
	SrcPart heap.PartitionID
	// Old is the overwritten pointer value (NilOID if the slot was empty);
	// OldPart is the partition the old target resides in and OldWeight its
	// root-distance weight, both meaningful only when Old is non-nil.
	Old       heap.OID
	OldPart   heap.PartitionID
	OldWeight uint8
	// New is the stored value, possibly NilOID.
	New heap.OID
	// Creation marks the store that installs a newly allocated object into
	// its parent. MutatedPartition deliberately does not distinguish these
	// (the paper cites that as one of its weaknesses); UpdatedPointer is
	// unaffected since a creation store overwrites nothing.
	Creation bool
}

// Overwrite reports whether the store overwrote a live pointer — the
// event the paper's new policies treat as a hint about garbage.
func (c StoreContext) Overwrite() bool { return c.Old != heap.NilOID }

// Env gives Select access to the simulated database. Only MostGarbage uses
// the oracle; only Random uses the random source.
type Env struct {
	Heap   *heap.Heap
	Oracle *heap.Oracle
	Rand   *rand.Rand

	cands []heap.PartitionID // Candidates scratch, reused per call
}

// Candidates returns the partitions eligible for collection — every
// partition that holds data and is not the reserved empty partition — in
// ascending ID order. The returned slice is scratch space owned by the Env
// and is invalidated by the next call.
func (e *Env) Candidates() []heap.PartitionID {
	out := e.cands[:0]
	for id := 0; id < e.Heap.NumPartitions(); id++ {
		pid := heap.PartitionID(id)
		if pid == e.Heap.EmptyPartition() {
			continue
		}
		if e.Heap.Partition(pid).Used() > 0 {
			out = append(out, pid)
		}
	}
	e.cands = out
	return out
}

// Policy selects partitions to collect. Implementations are not safe for
// concurrent use; each simulation owns one instance.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// PointerStore is invoked at the write barrier for every pointer
	// store, after the heap mutation.
	PointerStore(ctx StoreContext)
	// DataStore is invoked for pure data mutations of an object residing
	// in the given partition. Only the unenhanced YNY policy cares.
	DataStore(p heap.PartitionID)
	// Select picks the partition to collect. ok is false when the policy
	// declines to collect (NoCollection, or an empty database).
	Select(env *Env) (victim heap.PartitionID, ok bool)
	// Collected notifies the policy that p was collected so it can reset
	// per-partition state, and that dest received the survivors.
	Collected(p, dest heap.PartitionID)
}

// ClonablePolicy is optionally implemented by custom policies injected
// through sim.Config.PolicyImpl. Clone returns an independent instance
// equivalent to a freshly constructed one — sharing no mutable state with
// the receiver — which lets parallel harnesses (sim.Scheduler,
// sim.RunSeeds) give every run its own copy instead of serializing all
// runs through the shared instance. Stateful policies that accumulate
// across runs on purpose should not implement it; they keep the serial
// fallback.
type ClonablePolicy interface {
	Policy
	Clone() Policy
}

// counterPolicy is the shared machinery of the heuristic policies: a
// per-partition accumulator (a dense slice indexed by PartitionID),
// selection of the maximum, and zeroing after collection. Ties break
// toward the lowest partition ID.
type counterPolicy struct {
	counts []float64
}

func newCounterPolicy() counterPolicy {
	return counterPolicy{}
}

func (c *counterPolicy) at(p heap.PartitionID) float64 {
	if p < 0 || int(p) >= len(c.counts) {
		return 0
	}
	return c.counts[p]
}

func (c *counterPolicy) bump(p heap.PartitionID, by float64) {
	if p == heap.NoPartition {
		return
	}
	if want := int(p) + 1; want > len(c.counts) {
		c.counts = append(c.counts, make([]float64, want-len(c.counts))...)
	}
	c.counts[p] += by
}

func (c *counterPolicy) selectMax(env *Env) (heap.PartitionID, bool) {
	cands := env.Candidates()
	if len(cands) == 0 {
		return heap.NoPartition, false
	}
	best, bestScore := cands[0], c.at(cands[0])
	for _, p := range cands[1:] {
		if s := c.at(p); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best, true
}

func (c *counterPolicy) Collected(p, _ heap.PartitionID) {
	if int(p) < len(c.counts) {
		c.counts[p] = 0
	}
}

// DataStore is a no-op for every policy except MutatedObjectYNY.
func (c *counterPolicy) DataStore(heap.PartitionID) {}

// Score exposes a partition's accumulator for tests and diagnostics.
func (c *counterPolicy) Score(p heap.PartitionID) float64 { return c.at(p) }

// New constructs a policy by registry name. rng seeds the Random policy
// and is ignored by the others; it must not be shared with the workload
// generator so policy choice cannot perturb the trace.
func New(name string, rng *rand.Rand) (Policy, error) {
	switch name {
	case NameMutatedPartition:
		return NewMutatedPartition(), nil
	case NameMutatedObjectYNY:
		return NewMutatedObjectYNY(), nil
	case NameUpdatedPointer:
		return NewUpdatedPointer(), nil
	case NameWeightedPointer:
		return NewWeightedPointer(), nil
	case NameRandom:
		return NewRandom(rng), nil
	case NameMostGarbage:
		return NewMostGarbage(), nil
	case NameNoCollection:
		return NewNoCollection(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, Names())
	}
}

// Registry names for every policy.
const (
	NameMutatedPartition = "MutatedPartition"
	NameMutatedObjectYNY = "MutatedObjectYNY"
	NameUpdatedPointer   = "UpdatedPointer"
	NameWeightedPointer  = "WeightedPointer"
	NameRandom           = "Random"
	NameMostGarbage      = "MostGarbage"
	NameNoCollection     = "NoCollection"
)

// Names returns every registered policy name, sorted.
func Names() []string {
	names := []string{
		NameMutatedPartition,
		NameMutatedObjectYNY,
		NameUpdatedPointer,
		NameWeightedPointer,
		NameRandom,
		NameMostGarbage,
		NameNoCollection,
	}
	sort.Strings(names)
	return names
}

// PaperNames returns the six policies evaluated in the paper, in the order
// its tables list them (worst space behavior first).
func PaperNames() []string {
	return []string{
		NameNoCollection,
		NameMutatedPartition,
		NameRandom,
		NameWeightedPointer,
		NameUpdatedPointer,
		NameMostGarbage,
	}
}
