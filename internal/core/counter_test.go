package core

import (
	"math"
	"testing"
	"testing/quick"

	"odbgc/internal/heap"
)

func TestCounterPolicyIgnoresNoPartition(t *testing.T) {
	u := NewUpdatedPointer()
	// An overwrite whose old target was already discarded reports
	// NoPartition; it must not corrupt the accumulator.
	u.PointerStore(StoreContext{Src: 1, Old: 2, OldPart: heap.NoPartition})
	if got := u.Score(heap.NoPartition); got != 0 {
		t.Fatalf("NoPartition accumulated %v", got)
	}
}

func TestScoreReflectsBumps(t *testing.T) {
	u := NewUpdatedPointer()
	for i := 0; i < 3; i++ {
		u.PointerStore(StoreContext{Src: 1, Old: 2, OldPart: 5})
	}
	if got := u.Score(5); got != 3 {
		t.Fatalf("Score(5) = %v, want 3", got)
	}
	if got := u.Score(6); got != 0 {
		t.Fatalf("Score(6) = %v, want 0", got)
	}
}

func TestWeightedScoreAccumulatesExponentially(t *testing.T) {
	w := NewWeightedPointer()
	w.PointerStore(StoreContext{Src: 1, Old: 2, OldPart: 3, OldWeight: 2})
	w.PointerStore(StoreContext{Src: 1, Old: 4, OldPart: 3, OldWeight: 16})
	want := ExponentialWeight(2) + ExponentialWeight(16)
	if got := w.Score(3); got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

// TestExponentialWeightProperties: strictly decreasing in w over the
// valid range, halving per step, always ≥ 1.
func TestExponentialWeightProperties(t *testing.T) {
	f := func(raw uint8) bool {
		w := raw%heap.MaxWeight + 1 // 1..16
		v := ExponentialWeight(w)
		if v < 1 {
			return false
		}
		if w < heap.MaxWeight {
			next := ExponentialWeight(w + 1)
			if math.Abs(v/next-2) > 1e-9 {
				t.Errorf("ExponentialWeight(%d)=%v not double of (%d)=%v", w, v, w+1, next)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSkipsEmptyReservedEvenWithHighestScore(t *testing.T) {
	env, oids := testEnv(t, 2)
	u := NewUpdatedPointer()
	// Accumulate a huge score on the reserved empty partition (possible
	// transiently if a collection rotated the empty partition after the
	// counts accrued).
	empty := env.Heap.EmptyPartition()
	for i := 0; i < 100; i++ {
		u.PointerStore(StoreContext{Src: oids[0], Old: oids[1], OldPart: empty})
	}
	got, ok := u.Select(env)
	if !ok {
		t.Fatal("Select declined")
	}
	if got == empty {
		t.Fatal("selected the reserved empty partition despite candidate filter")
	}
}

func TestCollectedOnlyClearsVictim(t *testing.T) {
	u := NewUpdatedPointer()
	u.PointerStore(StoreContext{Src: 1, Old: 2, OldPart: 3})
	u.PointerStore(StoreContext{Src: 1, Old: 2, OldPart: 4})
	u.Collected(3, 9)
	if u.Score(3) != 0 {
		t.Fatal("victim score not cleared")
	}
	if u.Score(4) != 1 {
		t.Fatal("bystander score cleared")
	}
}

func TestYNYScoresDataAndPointerEqually(t *testing.T) {
	m := NewMutatedObjectYNY()
	m.PointerStore(StoreContext{Src: 1, SrcPart: 2})
	m.DataStore(2)
	if got := m.Score(2); got != 2 {
		t.Fatalf("Score = %v, want 2", got)
	}
}
