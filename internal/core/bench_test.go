package core

import (
	"math/rand"
	"testing"

	"odbgc/internal/heap"
)

// BenchmarkPropagateStore measures weight maintenance on a deep chain —
// the worst case, where one store relaxes weights transitively.
func BenchmarkPropagateStore(b *testing.B) {
	h, err := heap.New(heap.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const n = 1000
	for i := 1; i <= n; i++ {
		if _, _, err := h.Alloc(heap.OID(i), 100, 2, heap.NilOID); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		h.WriteField(heap.OID(i), 0, heap.OID(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset weights, then trigger a full-chain relaxation.
		b.StopTimer()
		for j := 1; j <= n; j++ {
			h.Get(heap.OID(j)).Weight = heap.MaxWeight
		}
		b.StartTimer()
		PropagateRoot(h, 1)
	}
}

// BenchmarkPolicySelect measures selection cost per policy on a 30-
// partition database.
func BenchmarkPolicySelect(b *testing.B) {
	h, err := heap.New(heap.Config{PageSize: 8192, PartitionPages: 2, ReserveEmpty: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 2000; i++ {
		if _, _, err := h.Alloc(heap.OID(i), 100, 4, heap.NilOID); err != nil {
			b.Fatal(err)
		}
	}
	h.AddRoot(1)
	for i := 2; i <= 2000; i++ {
		h.WriteField(heap.OID(rng.Intn(i-1)+1), rng.Intn(4), heap.OID(i))
	}
	env := &Env{Heap: h, Oracle: heap.NewOracle(h), Rand: rand.New(rand.NewSource(2))}

	for _, name := range Names() {
		pol, err := New(name, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol.Select(env)
			}
		})
	}
}

// BenchmarkPointerStoreHook measures the per-store policy hook cost.
func BenchmarkPointerStoreHook(b *testing.B) {
	ctx := StoreContext{Src: 1, SrcPart: 0, Old: 2, OldPart: 1, OldWeight: 5, New: 3}
	for _, name := range []string{NameMutatedPartition, NameUpdatedPointer, NameWeightedPointer} {
		pol, err := New(name, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol.PointerStore(ctx)
			}
		})
	}
}
