package core

import "odbgc/internal/heap"

// Weight maintenance for the WeightedPointer policy (Section 3.1): every
// object carries 4 bits of weight, defined as one plus the minimum weight
// of the objects pointing to it, capped at MaxWeight. Objects pointed to
// directly by the root set have weight 1. Weights only decrease (a new
// lower-weight edge propagates transitively); edge deletion does not raise
// them — the weight is a heuristic distance, not an exact one.
//
// Like the paper, weight maintenance is metadata bookkeeping piggybacked
// on stores the application performs anyway; it contributes no page I/O in
// the simulation's cost model. The simulator maintains weights under every
// policy so that runs differ only in partition selection.

// PropagateStore updates weights after the pointer store src→target: if
// reaching target through src gives it a smaller weight, the improvement is
// applied and propagated breadth-first through target's out-edges.
func PropagateStore(h *heap.Heap, src, target heap.OID) {
	if target == heap.NilOID {
		return
	}
	srcObj := h.Get(src)
	tgtObj := h.Get(target)
	if srcObj == nil || tgtObj == nil {
		return
	}
	w := srcObj.Weight
	if w >= heap.MaxWeight {
		return // cannot improve anything below the cap
	}
	relax(h, tgtObj, w+1)
}

// PropagateRoot gives a newly rooted object weight 1 and propagates.
func PropagateRoot(h *heap.Heap, oid heap.OID) {
	if obj := h.Get(oid); obj != nil {
		relax(h, obj, 1)
	}
}

// relax lowers obj's weight to at most w and propagates the improvement.
func relax(h *heap.Heap, obj *heap.Object, w uint8) {
	if w >= obj.Weight {
		return
	}
	obj.Weight = w
	queue := []*heap.Object{obj}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := cur.Weight + 1
		if next > heap.MaxWeight {
			continue
		}
		for _, f := range cur.Fields {
			if f == heap.NilOID {
				continue
			}
			child := h.Get(f)
			if child == nil || child.Weight <= next {
				continue
			}
			child.Weight = next
			queue = append(queue, child)
		}
	}
}
