package core

import (
	"math/rand"

	"odbgc/internal/heap"
)

// MutatedPartition selects the partition in which the most pointers have
// been updated since the last collection. It is the paper's enhancement of
// the Yong/Naughton/Yu policy: only pointer stores count, because pure
// data mutations cannot create garbage. It still counts creation stores,
// which the paper identifies as one reason it guesses poorly.
type MutatedPartition struct{ counterPolicy }

// NewMutatedPartition returns a MutatedPartition policy.
func NewMutatedPartition() *MutatedPartition {
	return &MutatedPartition{newCounterPolicy()}
}

// Name implements Policy.
func (*MutatedPartition) Name() string { return NameMutatedPartition }

// PointerStore counts every pointer store against the partition being
// written into (the source object's partition).
func (m *MutatedPartition) PointerStore(ctx StoreContext) { m.bump(ctx.SrcPart, 1) }

// Select implements Policy.
func (m *MutatedPartition) Select(env *Env) (heap.PartitionID, bool) { return m.selectMax(env) }

// MutatedObjectYNY is the unenhanced Yong/Naughton/Yu policy: it selects
// the partition that has been mutated the most, counting data mutations as
// well as pointer stores. It exists as an ablation baseline quantifying
// the value of the paper's pointer-only enhancement; it is not one of the
// paper's six evaluated policies.
type MutatedObjectYNY struct{ counterPolicy }

// NewMutatedObjectYNY returns a MutatedObjectYNY policy.
func NewMutatedObjectYNY() *MutatedObjectYNY {
	return &MutatedObjectYNY{newCounterPolicy()}
}

// Name implements Policy.
func (*MutatedObjectYNY) Name() string { return NameMutatedObjectYNY }

// PointerStore counts the store against the written partition.
func (m *MutatedObjectYNY) PointerStore(ctx StoreContext) { m.bump(ctx.SrcPart, 1) }

// DataStore counts pure data mutations too — the behavior the paper's
// enhancement removes.
func (m *MutatedObjectYNY) DataStore(p heap.PartitionID) { m.bump(p, 1) }

// Select implements Policy.
func (m *MutatedObjectYNY) Select(env *Env) (heap.PartitionID, bool) { return m.selectMax(env) }

// UpdatedPointer selects the partition that the most overwritten pointers
// pointed into since the last collection: when a pointer is overwritten,
// the object it pointed to is more likely to become garbage, so overwrites
// are hints about where garbage lives. This is the paper's winning policy.
type UpdatedPointer struct{ counterPolicy }

// NewUpdatedPointer returns an UpdatedPointer policy.
func NewUpdatedPointer() *UpdatedPointer {
	return &UpdatedPointer{newCounterPolicy()}
}

// Name implements Policy.
func (*UpdatedPointer) Name() string { return NameUpdatedPointer }

// PointerStore counts overwrites against the old target's partition.
func (u *UpdatedPointer) PointerStore(ctx StoreContext) {
	if ctx.Overwrite() {
		u.bump(ctx.OldPart, 1)
	}
}

// Select implements Policy.
func (u *UpdatedPointer) Select(env *Env) (heap.PartitionID, bool) { return u.selectMax(env) }

// WeightedPointer refines UpdatedPointer with the observation that not all
// pointers are equal: in tree-like databases, losing a pointer near the
// root orphans a whole subtree, while losing a leaf pointer frees little.
// Each object carries a 4-bit weight approximating its distance from the
// database roots; an overwritten pointer to an object of weight w adds
// 2^(16−w) to the accumulator of the partition it pointed into.
type WeightedPointer struct{ counterPolicy }

// NewWeightedPointer returns a WeightedPointer policy.
func NewWeightedPointer() *WeightedPointer {
	return &WeightedPointer{newCounterPolicy()}
}

// Name implements Policy.
func (*WeightedPointer) Name() string { return NameWeightedPointer }

// PointerStore adds the exponential weight of the overwritten pointer's
// target to that target's partition.
func (w *WeightedPointer) PointerStore(ctx StoreContext) {
	if !ctx.Overwrite() {
		return
	}
	w.bump(ctx.OldPart, ExponentialWeight(ctx.OldWeight))
}

// Select implements Policy.
func (w *WeightedPointer) Select(env *Env) (heap.PartitionID, bool) { return w.selectMax(env) }

// ExponentialWeight returns 2^(16−w), the accumulator contribution of an
// overwritten pointer to an object of weight w (Section 3.1: overwriting
// the pointer to a weight-2 object contributes 2^14 = 16384).
func ExponentialWeight(w uint8) float64 {
	if w < 1 {
		w = 1
	}
	if w > heap.MaxWeight {
		w = heap.MaxWeight
	}
	return float64(int64(1) << (heap.MaxWeight - w))
}

// Random selects a uniformly random candidate partition. The paper uses it
// to measure how much the clever heuristics actually help.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy drawing from rng.
func NewRandom(rng *rand.Rand) *Random { return &Random{rng: rng} }

// Name implements Policy.
func (*Random) Name() string { return NameRandom }

// PointerStore implements Policy; Random keeps no state.
func (*Random) PointerStore(StoreContext) {}

// DataStore implements Policy.
func (*Random) DataStore(heap.PartitionID) {}

// Select picks a uniformly random candidate.
func (r *Random) Select(env *Env) (heap.PartitionID, bool) {
	cands := env.Candidates()
	if len(cands) == 0 {
		return heap.NoPartition, false
	}
	rng := r.rng
	if rng == nil {
		rng = env.Rand
	}
	return cands[rng.Intn(len(cands))], true
}

// Collected implements Policy.
func (*Random) Collected(_, _ heap.PartitionID) {}

// MostGarbage consults the simulation oracle and selects the partition
// currently containing the most garbage. It is impractical to implement in
// a real system and serves as the near-optimal comparison point. Note that
// picking the instantaneous best partition is not globally optimal: the
// paper observes UpdatedPointer occasionally beating it.
type MostGarbage struct{}

// NewMostGarbage returns a MostGarbage policy.
func NewMostGarbage() *MostGarbage { return &MostGarbage{} }

// Name implements Policy.
func (*MostGarbage) Name() string { return NameMostGarbage }

// PointerStore implements Policy; the oracle needs no barrier state.
func (*MostGarbage) PointerStore(StoreContext) {}

// DataStore implements Policy.
func (*MostGarbage) DataStore(heap.PartitionID) {}

// Select asks the oracle for the partition with the most garbage.
func (*MostGarbage) Select(env *Env) (heap.PartitionID, bool) {
	if len(env.Candidates()) == 0 {
		return heap.NoPartition, false
	}
	p, _ := env.Oracle.MostGarbagePartition()
	if p == heap.NoPartition {
		return heap.NoPartition, false
	}
	return p, true
}

// Collected implements Policy.
func (*MostGarbage) Collected(_, _ heap.PartitionID) {}

// NoCollection never collects; the database only grows. It bounds the
// space cost of doing nothing and exposes the locality benefit other
// policies get from compaction.
type NoCollection struct{}

// NewNoCollection returns a NoCollection policy.
func NewNoCollection() *NoCollection { return &NoCollection{} }

// Name implements Policy.
func (*NoCollection) Name() string { return NameNoCollection }

// PointerStore implements Policy.
func (*NoCollection) PointerStore(StoreContext) {}

// DataStore implements Policy.
func (*NoCollection) DataStore(heap.PartitionID) {}

// Select always declines.
func (*NoCollection) Select(*Env) (heap.PartitionID, bool) { return heap.NoPartition, false }

// Collected implements Policy; it is never called.
func (*NoCollection) Collected(_, _ heap.PartitionID) {}
