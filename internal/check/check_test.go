package check_test

import (
	"strings"
	"testing"

	"odbgc/internal/check"
	"odbgc/internal/core"
	"odbgc/internal/heap"
	"odbgc/internal/sim"
	"odbgc/internal/stats"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

func testWorkload() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.TargetLiveBytes = 200_000
	cfg.TotalAllocBytes = 600_000
	cfg.MinDeletions = 200
	cfg.MeanTreeNodes = 60
	cfg.LargeEvery = 0
	return cfg
}

func testSim(policy string) sim.Config {
	return sim.Config{
		Policy:            policy,
		Seed:              1,
		Heap:              heap.Config{PageSize: 4096, PartitionPages: 8, ReserveEmpty: true},
		TriggerOverwrites: 50,
	}
}

// runInto streams a workload into a fresh simulator and returns it still
// unfinished, so tests can inspect and corrupt its live state.
func runInto(t *testing.T, simCfg sim.Config, wlCfg workload.Config) *sim.Sim {
	t.Helper()
	s, err := sim.New(simCfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g, err := workload.New(wlCfg)
	if err != nil {
		t.Fatalf("workload.New: %v", err)
	}
	if _, err := g.Run(s); err != nil {
		t.Fatalf("workload run: %v", err)
	}
	return s
}

// TestCatalogPassesOnCleanRuns audits every policy's run after every
// collection and a fixed event cadence; a correct simulator must never
// trip an invariant.
func TestCatalogPassesOnCleanRuns(t *testing.T) {
	rt, err := workload.Record(testWorkload())
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	for _, policy := range core.Names() {
		cfg := testSim(policy)
		cfg.Audit = check.Audited(1, 4096)
		if _, err := sim.RunRecorded(cfg, rt); err != nil {
			t.Errorf("policy %s: audited run failed: %v", policy, err)
		}
	}
}

// TestCatalogPassesBufferedBarrier exercises the DrainBarrier-before-audit
// path: the SSB leaves remembered sets stale between stores, and the
// audit must observe the drained state.
func TestCatalogPassesBufferedBarrier(t *testing.T) {
	cfg := testSim(core.NameMutatedPartition)
	cfg.BufferedBarrier = true
	cfg.Audit = check.Audited(1, 1024)
	if _, _, err := sim.RunWorkload(cfg, testWorkload()); err != nil {
		t.Fatalf("audited buffered-barrier run failed: %v", err)
	}
}

// TestFaultInjectionDetected corrupts one remembered-set entry and
// demands the audit name the specific invariant that broke, through both
// the direct catalog call and the simulator's Audit wrapper.
func TestFaultInjectionDetected(t *testing.T) {
	cfg := testSim(core.NameMutatedPartition)
	cfg.Audit = check.Audited(1, 0)
	s := runInto(t, cfg, testWorkload())
	if err := s.Audit(); err != nil {
		t.Fatalf("audit failed before corruption: %v", err)
	}

	corrupted := false
	for p := 0; p < s.Heap().NumPartitions(); p++ {
		if s.Remset().CorruptFirstEntryForTesting(heap.PartitionID(p)) {
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no remembered-set entry to corrupt; workload too small")
	}

	err := s.Audit()
	if err == nil {
		t.Fatal("audit passed over a corrupted remembered-set entry")
	}
	if !strings.Contains(err.Error(), "records target") {
		t.Errorf("audit error does not name the corrupted-entry invariant: %v", err)
	}
	if !strings.Contains(err.Error(), "sim: audit after") {
		t.Errorf("audit error lacks the simulator context wrapper: %v", err)
	}
}

// TestAuditOffZeroAllocs proves the audit wiring costs nothing when off:
// steady-state read and modify events must not allocate. Sim.Emit carries
// the //odbgc:hotpath annotation checked by the hotalloc analyzer;
// TestHotpathAnnotationsMatchGuards in internal/analysis keeps the
// annotation and this guard in sync via the declaration below.
//
//odbgc:allocguard sim.Sim.Emit
func TestAuditOffZeroAllocs(t *testing.T) {
	s := runInto(t, testSim(core.NameMutatedPartition), testWorkload())
	var oid heap.OID
	s.Heap().Roots(func(o heap.OID) {
		if oid == heap.NilOID {
			oid = o
		}
	})
	if oid == heap.NilOID {
		t.Fatal("no root object")
	}
	read := trace.Event{Kind: trace.KindRead, OID: oid}
	modify := trace.Event{Kind: trace.KindModify, OID: oid}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.Emit(read); err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(modify); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Emit with auditing off allocates %v times per read+modify pair, want 0", allocs)
	}
}

// TestRecordOffZeroAllocs proves the structured-recording hooks cost
// nothing when disabled: with Config.Record left zero, steady-state
// events through the hook-guarded trigger paths must not allocate. The
// same //odbgc:hotpath annotation on Sim.Emit covers this wiring.
//
//odbgc:allocguard sim.Sim.Emit
func TestRecordOffZeroAllocs(t *testing.T) {
	cfg := testSim(core.NameUpdatedPointer)
	if cfg.Record.Activation != nil || cfg.Record.Sample != nil {
		t.Fatal("test premise broken: default config has recording hooks set")
	}
	s := runInto(t, cfg, testWorkload())
	var oid heap.OID
	s.Heap().Roots(func(o heap.OID) {
		if oid == heap.NilOID {
			oid = o
		}
	})
	if oid == heap.NilOID {
		t.Fatal("no root object")
	}
	read := trace.Event{Kind: trace.KindRead, OID: oid}
	modify := trace.Event{Kind: trace.KindModify, OID: oid}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.Emit(read); err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(modify); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Emit with recording off allocates %v times per read+modify pair, want 0", allocs)
	}
}

func TestDiffResults(t *testing.T) {
	a := sim.Result{Policy: "P", Events: 100, Collections: 12, AppIOs: 7}
	if err := check.DiffResults("left", "right", a, a); err != nil {
		t.Errorf("identical results reported divergent: %v", err)
	}

	b := a
	b.Collections = 13
	b.AppIOs = 9
	err := check.DiffResults("left", "right", a, b)
	if err == nil {
		t.Fatal("divergent results reported identical")
	}
	for _, want := range []string{"AppIOs: 7 vs 9", "2 field(s) differ", "left", "right"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diff report %q missing %q", err, want)
		}
	}

	// Series divergence is localized to the first differing sample.
	withSeries := func(y float64) sim.Result {
		r := a
		r.Series = stats.NewSeries("events", "occupied_kb")
		r.Series.Add(10, 1.0)
		r.Series.Add(20, y)
		return r
	}
	err = check.DiffResults("left", "right", withSeries(2.0), withSeries(3.0))
	if err == nil || !strings.Contains(err.Error(), "x=20") {
		t.Errorf("series diff not localized to the divergent sample: %v", err)
	}
}

func TestTriggerParity(t *testing.T) {
	mk := func(collections, declined int64) []sim.Result {
		return []sim.Result{{Events: 500, Overwrites: 90, TotalAllocatedBytes: 1 << 20,
			Collections: collections, Declined: declined}}
	}
	ok := map[string][]sim.Result{
		"MutatedPartition": mk(9, 0),
		"NoCollection":     mk(0, 9), // declines every activation
	}
	if err := check.TriggerParity(ok); err != nil {
		t.Errorf("equal activation counts reported divergent: %v", err)
	}

	bad := map[string][]sim.Result{
		"MutatedPartition": mk(9, 0),
		"Random":           mk(8, 0),
	}
	err := check.TriggerParity(bad)
	if err == nil {
		t.Fatal("unequal activation counts passed")
	}
	if !strings.Contains(err.Error(), "trigger") {
		t.Errorf("parity error does not explain the trigger identity: %v", err)
	}
}

// TestSelfCheckShort runs the full differential harness in its CI shape.
func TestSelfCheckShort(t *testing.T) {
	if err := check.SelfCheck(check.Options{Short: true, Logf: t.Logf}); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
}
