// Package check is the simulator's correctness layer: a cross-structure
// invariant auditor that reconciles the incrementally maintained hot
// structures (object table, partition residents, remembered sets, page
// buffer frame arena, counters) against brute-force ground truth, and a
// differential self-check harness (SelfCheck) that replays one
// configuration through deliberately independent slow paths and demands
// bit-identical results.
//
// The auditor hooks into a run through sim.Config.Audit (see Audited);
// with the hook unset the simulator's event path pays only a nil check,
// so production runs are unaffected.
package check

import (
	"fmt"
	"sort"

	"odbgc/internal/heap"
	"odbgc/internal/remset"
	"odbgc/internal/sim"
)

// Run executes the full invariant catalog against a simulator at a
// quiescent point (between events). It is O(heap + buffer) per call and
// returns the first violation found, or nil.
func Run(s *sim.Sim) error {
	if err := s.Heap().CheckInvariants(); err != nil {
		return err
	}
	if t := s.Tiered(); t != nil {
		if err := t.CheckInvariants(); err != nil {
			return err
		}
	} else if err := s.Buffer().CheckInvariants(); err != nil {
		return err
	}
	if err := Remsets(s.Heap(), s.Remset()); err != nil {
		return err
	}
	if err := Weights(s.Heap()); err != nil {
		return err
	}
	return Conservation(s)
}

// Audited returns the audit configuration wiring the full catalog into a
// simulation: everyCollections and everyEvents set the cadence as in
// sim.AuditConfig.
func Audited(everyCollections int, everyEvents int64) sim.AuditConfig {
	return sim.AuditConfig{
		Check:            Run,
		EveryCollections: everyCollections,
		EveryEvents:      everyEvents,
	}
}

// pointerLoc names one pointer field for remembered-set reconciliation.
type pointerLoc struct {
	src   heap.OID
	field int
}

// Remsets reconciles the remembered sets against a brute-force scan of
// every pointer field in the heap, in both directions:
//
//   - every inter-partition pointer src.field → target must appear in the
//     in-set of target's partition, recording the actual target;
//   - every recorded entry must correspond to a live inter-partition
//     pointer (no stale or corrupted entries);
//   - the out-set of each partition must hold exactly the objects with at
//     least one outgoing inter-partition pointer;
//   - every object's dense out-count must equal its actual number of
//     out-of-partition fields.
//
// It is implemented purely against the public heap and remset API, so it
// cross-checks remset.Table.Audit rather than sharing its code.
func Remsets(h *heap.Heap, rem *remset.Table) error {
	wantIn := make(map[heap.PartitionID]map[pointerLoc]heap.OID)
	wantOutMembers := make(map[heap.PartitionID]map[heap.OID]bool)
	wantOutCount := make(map[heap.OID]int)
	var scanErr error
	for pid := 0; pid < h.NumPartitions(); pid++ {
		p := heap.PartitionID(pid)
		h.Partition(p).Objects(func(oid heap.OID) {
			if scanErr != nil {
				return
			}
			obj := h.Get(oid)
			for f, target := range obj.Fields {
				if target == heap.NilOID {
					continue
				}
				tObj := h.Get(target)
				if tObj == nil {
					scanErr = fmt.Errorf("check: object %d field %d points to non-resident object %d (dangling pointer)", oid, f, target)
					return
				}
				if tObj.Partition == obj.Partition {
					continue
				}
				set := wantIn[tObj.Partition]
				if set == nil {
					set = make(map[pointerLoc]heap.OID)
					wantIn[tObj.Partition] = set
				}
				set[pointerLoc{oid, f}] = target
				members := wantOutMembers[obj.Partition]
				if members == nil {
					members = make(map[heap.OID]bool)
					wantOutMembers[obj.Partition] = members
				}
				members[oid] = true
				wantOutCount[oid]++
			}
		})
	}
	if scanErr != nil {
		return scanErr
	}

	// In-sets, both directions. RootsInto yields every recorded entry of a
	// partition; comparing the per-partition counts afterwards turns "every
	// recorded entry is wanted" plus "counts match" into set equality.
	for pid := 0; pid < h.NumPartitions(); pid++ {
		p := heap.PartitionID(pid)
		want := wantIn[p]
		var firstErr error
		seen := 0
		rem.RootsInto(p, func(e remset.Entry, target heap.OID) {
			if firstErr != nil {
				return
			}
			seen++
			actual, ok := want[pointerLoc{e.Src, e.Field}]
			if !ok {
				firstErr = fmt.Errorf("check: remembered set of partition %d holds stale entry %d.%d (no such inter-partition pointer)", p, e.Src, e.Field)
				return
			}
			if target != actual {
				firstErr = fmt.Errorf("check: remembered entry %d.%d into partition %d records target %d, heap field holds %d", e.Src, e.Field, p, target, actual)
			}
		})
		if firstErr != nil {
			return firstErr
		}
		if seen != len(want) {
			return fmt.Errorf("check: partition %d remembers %d pointers, heap has %d inter-partition pointers into it", p, seen, len(want))
		}
		if n := rem.InCount(p); n != len(want) {
			return fmt.Errorf("check: partition %d in-count %d, heap has %d inter-partition pointers into it", p, n, len(want))
		}
	}

	// Out-sets and the dense out-counts.
	for pid := 0; pid < h.NumPartitions(); pid++ {
		p := heap.PartitionID(pid)
		members := wantOutMembers[p]
		var firstErr error
		seen := 0
		rem.OutSet(p, func(oid heap.OID) {
			if firstErr != nil {
				return
			}
			seen++
			if !members[oid] {
				firstErr = fmt.Errorf("check: out-set of partition %d lists object %d, which has no out-of-partition pointer", p, oid)
			}
		})
		if firstErr != nil {
			return firstErr
		}
		if seen != len(members) {
			return fmt.Errorf("check: out-set of partition %d lists %d objects, heap has %d with out-pointers", p, seen, len(members))
		}
	}
	for oid := heap.OID(1); oid < h.OIDBound(); oid++ {
		if h.Get(oid) == nil {
			continue
		}
		if got, want := rem.OutCount(oid), wantOutCount[oid]; got != want {
			return fmt.Errorf("check: object %d out-count %d, heap has %d out-of-partition fields", oid, got, want)
		}
	}
	return nil
}

// Weights verifies the WeightedPointer metadata bounds: every resident
// object's weight lies in [1, heap.MaxWeight] (the 4-bit encoding plus
// the "weight 0 never appears" floor), and every database root has
// weight exactly 1 — roots are relaxed to 1 when rooted and weights only
// decrease.
func Weights(h *heap.Heap) error {
	for oid := heap.OID(1); oid < h.OIDBound(); oid++ {
		obj := h.Get(oid)
		if obj == nil {
			continue
		}
		if obj.Weight < 1 || obj.Weight > heap.MaxWeight {
			return fmt.Errorf("check: object %d weight %d outside [1,%d]", oid, obj.Weight, heap.MaxWeight)
		}
		if h.IsRoot(oid) && obj.Weight != 1 {
			return fmt.Errorf("check: root object %d has weight %d, want 1", oid, obj.Weight)
		}
	}
	return nil
}

// Conservation verifies the byte and object accounting across the
// allocator, collector, and reachability oracle:
//
//   - total allocated bytes == occupied bytes + lifetime reclaimed bytes
//     (nothing leaks, nothing is double-reclaimed), and likewise for
//     object counts;
//   - live bytes never exceed occupied bytes;
//   - the oracle's per-partition garbage tallies are non-negative and sum
//     to occupied − live.
//
// The collector's lifetime counters make this hold across warm-start
// measurement resets. It holds only between events: mid-collection an
// object is transiently accounted in two places.
func Conservation(s *sim.Sim) error {
	h := s.Heap()
	life := s.CollectorLifetime()
	occupied := h.OccupiedBytes()
	if got, want := occupied+life.ReclaimedBytes, h.TotalAllocatedBytes(); got != want {
		return fmt.Errorf("check: byte conservation violated: occupied %d + reclaimed %d = %d, total allocated %d",
			occupied, life.ReclaimedBytes, got, want)
	}
	if got, want := int64(h.Len())+life.ReclaimedObjects, h.TotalAllocatedObjects(); got != want {
		return fmt.Errorf("check: object conservation violated: resident %d + reclaimed %d = %d, total allocated %d",
			h.Len(), life.ReclaimedObjects, got, want)
	}
	live := s.Oracle().LiveBytes()
	if live > occupied {
		return fmt.Errorf("check: live bytes %d exceed occupied bytes %d", live, occupied)
	}
	var garbage int64
	for p, g := range s.Oracle().GarbageByPartition() {
		if g < 0 {
			return fmt.Errorf("check: partition %d has negative garbage %d", p, g)
		}
		garbage += g
	}
	if garbage != occupied-live {
		return fmt.Errorf("check: per-partition garbage sums to %d, occupied−live is %d", garbage, occupied-live)
	}
	return nil
}

// TriggerParity verifies the policy-independence of the collection
// trigger across a suite: the paper's pairing discipline replays one
// workload seed under every policy, and since pointer overwrites are a
// function of the trace alone, the trigger must fire at the same events
// everywhere. For each seed index the event count, overwrite count,
// allocated bytes, and trigger activations (collections + declined
// selections) must agree across all policies.
//
// The activation identity assumes each activation collects at most one
// partition (sim.Config.CollectPartitions ≤ 1), the paper's setting.
func TriggerParity(results map[string][]sim.Result) error {
	// Iterate policies in sorted order so the first divergence reported
	// is the same on every run.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	refName := names[0]
	ref := results[refName]
	for _, name := range names[1:] {
		rs := results[name]
		if len(rs) != len(ref) {
			return fmt.Errorf("check: %s ran %d seeds, %s ran %d", name, len(rs), refName, len(ref))
		}
		for i := range rs {
			a, b := ref[i], rs[i]
			if a.Events != b.Events {
				return fmt.Errorf("check: seed %d: %s saw %d events, %s saw %d — shared trace violated", i, refName, a.Events, name, b.Events)
			}
			if a.Overwrites != b.Overwrites {
				return fmt.Errorf("check: seed %d: %s counted %d overwrites, %s counted %d — barrier depends on policy", i, refName, a.Overwrites, name, b.Overwrites)
			}
			if a.TotalAllocatedBytes != b.TotalAllocatedBytes {
				return fmt.Errorf("check: seed %d: %s allocated %d bytes, %s allocated %d", i, refName, a.TotalAllocatedBytes, name, b.TotalAllocatedBytes)
			}
			if aAct, bAct := a.Collections+a.Declined, b.Collections+b.Declined; aAct != bAct {
				return fmt.Errorf("check: seed %d: trigger fired %d times under %s but %d under %s — trigger is not policy-independent",
					i, aAct, refName, bAct, name)
			}
		}
	}
	return nil
}
