package check

import (
	"fmt"
	"reflect"
	"strings"

	"odbgc/internal/sim"
)

// DiffResults compares two runs that must be bit-identical and reports
// every field that diverges, first field first — a readable account of
// where two supposedly equivalent paths came apart, instead of a bare
// DeepEqual verdict. labelA and labelB name the two paths (e.g. "frozen
// replay" / "packed replay"). It returns nil when the results agree.
func DiffResults(labelA, labelB string, a, b sim.Result) error {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	t := va.Type()
	var diffs []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Name == "Series" {
			// The one non-comparable field: a pointer to sampled rows.
			if !reflect.DeepEqual(a.Series, b.Series) {
				diffs = append(diffs, describeSeriesDiff(a, b))
			}
			continue
		}
		x, y := va.Field(i).Interface(), vb.Field(i).Interface()
		if x != y {
			diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", f.Name, x, y))
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("check: %s and %s diverge at %s (%s vs %s, %d field(s) differ)",
		labelA, labelB, diffs[0], labelA, labelB, len(diffs))
}

// describeSeriesDiff pinpoints where two time series came apart.
func describeSeriesDiff(a, b sim.Result) string {
	sa, sb := a.Series, b.Series
	switch {
	case sa == nil || sb == nil:
		return fmt.Sprintf("Series: %s vs %s", describeSeries(sa != nil), describeSeries(sb != nil))
	case sa.Len() != sb.Len():
		return fmt.Sprintf("Series: %d samples vs %d samples", sa.Len(), sb.Len())
	case len(sa.Y) != len(sb.Y):
		return "Series: header mismatch (" + strings.Join(sa.Names, ",") + " vs " + strings.Join(sb.Names, ",") + ")"
	default:
		for i := 0; i < sa.Len(); i++ {
			if sa.X[i] != sb.X[i] {
				return fmt.Sprintf("Series: sample %d taken at x=%d vs x=%d", i, sa.X[i], sb.X[i])
			}
			for c := range sa.Y {
				if sa.Y[c][i] != sb.Y[c][i] {
					return fmt.Sprintf("Series: first divergent sample at x=%d, column %s (%v vs %v)",
						sa.X[i], sa.Names[c], sa.Y[c][i], sb.Y[c][i])
				}
			}
		}
		return "Series: header mismatch (" + strings.Join(sa.Names, ",") + " vs " + strings.Join(sb.Names, ",") + ")"
	}
}

func describeSeries(present bool) string {
	if present {
		return "sampled"
	}
	return "absent"
}
