package check_test

import (
	"testing"

	"odbgc/internal/check"
	"odbgc/internal/core"
	"odbgc/internal/heap"
	"odbgc/internal/sim"
	"odbgc/internal/trace"
)

// FuzzAuditedSim drives random valid event streams through a fully
// audited simulator: every collection and every fourth event runs the
// complete invariant catalog, so any sequence of operations that drifts
// the incremental structures from ground truth fails the fuzz run. The
// fuzz input is decoded into structurally valid events only (resident
// parents, in-range fields), so every Emit error is a real bug.
func FuzzAuditedSim(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 8, 0, 0, 0, 9, 1, 0, 1, 0, 0, 0, 3, 0, 0, 1})
	f.Add([]byte{
		0, 30, 2, 0, 1, 0, 0, 0, 0, 12, 1, 0, 3, 1, 0, 1,
		0, 5, 2, 1, 3, 0, 1, 0, 2, 0, 0, 0, 4, 1, 0, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := sim.Config{
			Policy:            core.NameMutatedPartition,
			Seed:              1,
			Heap:              heap.Config{PageSize: 512, PartitionPages: 4, ReserveEmpty: true},
			TriggerOverwrites: 8,
			Audit:             check.Audited(1, 4),
		}
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		h := s.Heap()

		next := heap.OID(1)
		var created []heap.OID
		nfields := map[heap.OID]int{}
		// pick returns a created OID that is still resident, pruning
		// collected ones, or NilOID when none remain.
		pick := func(sel int) heap.OID {
			for len(created) > 0 {
				i := sel % len(created)
				if h.Contains(created[i]) {
					return created[i]
				}
				created[i] = created[len(created)-1]
				created = created[:len(created)-1]
			}
			return heap.NilOID
		}

		for i := 0; i+4 <= len(data); i += 4 {
			op, a, b, c := data[i]%5, int(data[i+1]), int(data[i+2]), int(data[i+3])
			var e trace.Event
			switch op {
			case 0: // create, optionally attached to a resident parent
				nf := a % 4
				e = trace.Event{Kind: trace.KindCreate, OID: next,
					Size: int64(16 + (b%48)*8), NFields: nf}
				if parent := pick(c); parent != heap.NilOID && nfields[parent] > 0 && a%3 != 0 {
					e.Parent = parent
					e.ParentField = b % nfields[parent]
				}
				nfields[next] = nf
				created = append(created, next)
				next++
			case 1: // root
				oid := pick(a)
				if oid == heap.NilOID {
					continue
				}
				e = trace.Event{Kind: trace.KindRoot, OID: oid}
			case 2: // read
				oid := pick(a)
				if oid == heap.NilOID {
					continue
				}
				e = trace.Event{Kind: trace.KindRead, OID: oid}
			case 3: // pointer write, target possibly nil
				src := pick(a)
				if src == heap.NilOID || nfields[src] == 0 {
					continue
				}
				e = trace.Event{Kind: trace.KindWrite, OID: src, Field: b % nfields[src]}
				if c%3 != 0 {
					e.Target = pick(c)
				}
			case 4: // data modify
				oid := pick(a)
				if oid == heap.NilOID {
					continue
				}
				e = trace.Event{Kind: trace.KindModify, OID: oid}
			}
			if err := s.Emit(e); err != nil {
				t.Fatalf("event %d (%s): %v", i/4, e.Kind, err)
			}
		}
		if err := s.Audit(); err != nil {
			t.Fatalf("final audit: %v", err)
		}
		s.Finish()
	})
}
