package check

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"

	"odbgc/internal/core"
	"odbgc/internal/heap"
	"odbgc/internal/shard"
	"odbgc/internal/sim"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

// Options configures SelfCheck.
type Options struct {
	// Short trims the run for CI smoke use: one seed instead of two and a
	// sparser audit cadence. The catalog and every differential path still
	// execute.
	Short bool
	// Seeds overrides the seed count; 0 picks the default (1 short, 2
	// full).
	Seeds int
	// Logf receives one progress line per phase; nil discards them.
	Logf func(format string, args ...any)
}

// SelfCheck replays a deliberately small configuration through every
// policy with the full invariant catalog auditing each run, then drives
// the same workload through independent slow and fast paths that must
// agree bit-for-bit:
//
//   - audited vs unaudited (auditing must not perturb results);
//   - frozen columnar replay vs packed varint replay;
//   - streamed chunked-file replay vs the in-memory frozen replay;
//   - recorded-trace replay vs a live generator run;
//   - eager write barrier vs the buffered (SSB) barrier;
//   - serial loop vs the parallel scheduler with a shared trace cache;
//   - trigger parity across all policies (TriggerParity);
//   - the sharded engine's goroutine-per-shard mode vs its serial mode
//     (bit-identical per-shard results, per-partition garbage, and
//     exchange counters), and its single-shard mode vs the plain
//     simulator.
//
// The first divergence or invariant violation is reported with the
// specific field or structure that came apart. A nil return means every
// path agreed and every audit passed.
func SelfCheck(opts Options) error {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seeds := opts.Seeds
	if seeds <= 0 {
		seeds = 2
		if opts.Short {
			seeds = 1
		}
	}
	everyEvents := int64(1 << 12)
	if opts.Short {
		everyEvents = 1 << 14
	}

	wlBase := smallWorkload()
	simBase := smallSim()
	cache := workload.NewTraceCache(0)

	// Phase 1: audited catalog under every policy, and audit neutrality.
	logf("selfcheck: phase 1: invariant catalog, %d policies x %d seeds", len(core.Names()), seeds)
	byPolicy := make(map[string][]sim.Result)
	for i := 0; i < seeds; i++ {
		wl := wlBase
		wl.Seed += int64(i)
		rt, err := cache.Get(wl)
		if err != nil {
			return fmt.Errorf("selfcheck: recording workload seed %d: %w", wl.Seed, err)
		}
		for _, policy := range core.Names() {
			cfg := simBase
			cfg.Policy = policy
			cfg.Seed = simBase.Seed + 1000 + int64(i)
			audited := cfg
			audited.Audit = Audited(1, everyEvents)
			resAudited, err := sim.RunRecorded(audited, rt)
			if err != nil {
				return fmt.Errorf("selfcheck: audited run (policy %s, seed %d): %w", policy, wl.Seed, err)
			}
			resPlain, err := sim.RunRecorded(cfg, rt)
			if err != nil {
				return fmt.Errorf("selfcheck: plain run (policy %s, seed %d): %w", policy, wl.Seed, err)
			}
			if err := DiffResults("audited run", "unaudited run", resAudited, resPlain); err != nil {
				return fmt.Errorf("selfcheck: auditing perturbed policy %s, seed %d: %w", policy, wl.Seed, err)
			}
			byPolicy[policy] = append(byPolicy[policy], resPlain)
		}
	}
	if err := TriggerParity(byPolicy); err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}

	// Phase 2: differential replay paths under one representative policy.
	policy := core.NameMutatedPartition
	logf("selfcheck: phase 2: differential replay paths, policy %s", policy)
	for i := 0; i < seeds; i++ {
		wl := wlBase
		wl.Seed += int64(i)
		cfg := simBase
		cfg.Policy = policy
		cfg.Seed = simBase.Seed + 1000 + int64(i)
		rt, err := cache.Get(wl)
		if err != nil {
			return fmt.Errorf("selfcheck: recording workload seed %d: %w", wl.Seed, err)
		}
		ref := byPolicy[policy][i]

		// Frozen columnar replay vs decoding the packed buffer per event.
		if rt.Frozen == nil {
			return fmt.Errorf("selfcheck: workload seed %d did not freeze — packed-vs-frozen path untestable", wl.Seed)
		}
		packed := *rt
		packed.Frozen = nil
		resPacked, err := sim.RunRecorded(cfg, &packed)
		if err != nil {
			return fmt.Errorf("selfcheck: packed replay (seed %d): %w", wl.Seed, err)
		}
		if err := DiffResults("frozen replay", "packed replay", ref, resPacked); err != nil {
			return fmt.Errorf("selfcheck: seed %d: %w", wl.Seed, err)
		}

		// Streamed chunked-file replay vs the in-memory frozen replay.
		// Small chunks force many boundaries through the prefetch
		// pipeline; the build/churn boundary carries over from the
		// in-memory recording since the file does not store it.
		tmpDir, err := os.MkdirTemp("", "odbgc-selfcheck")
		if err != nil {
			return fmt.Errorf("selfcheck: temp dir for streamed trace: %w", err)
		}
		streamPath := filepath.Join(tmpDir, fmt.Sprintf("seed%d.odbgcck", wl.Seed))
		resStreamed, serr := func() (sim.Result, error) {
			if err := rt.WriteChunked(streamPath, 64<<10); err != nil {
				return sim.Result{}, fmt.Errorf("writing chunked trace: %w", err)
			}
			streamed, err := workload.OpenStreamed(streamPath)
			if err != nil {
				return sim.Result{}, fmt.Errorf("opening chunked trace: %w", err)
			}
			streamed.Config = rt.Config
			streamed.Stats = rt.Stats
			streamed.BuildEvents = rt.BuildEvents
			return sim.RunRecorded(cfg, streamed)
		}()
		os.RemoveAll(tmpDir)
		if serr != nil {
			return fmt.Errorf("selfcheck: streamed replay (seed %d): %w", wl.Seed, serr)
		}
		if err := DiffResults("frozen replay", "streamed chunked replay", ref, resStreamed); err != nil {
			return fmt.Errorf("selfcheck: seed %d: %w", wl.Seed, err)
		}

		// Recorded trace vs running the generator live.
		resFresh, _, err := sim.RunWorkload(cfg, wl)
		if err != nil {
			return fmt.Errorf("selfcheck: live generator run (seed %d): %w", wl.Seed, err)
		}
		if err := DiffResults("recorded replay", "live generator", ref, resFresh); err != nil {
			return fmt.Errorf("selfcheck: seed %d: %w", wl.Seed, err)
		}

		// Eager barrier vs the sequential store buffer.
		ssb := cfg
		ssb.BufferedBarrier = true
		ssb.Audit = Audited(1, everyEvents)
		resSSB, err := sim.RunRecorded(ssb, rt)
		if err != nil {
			return fmt.Errorf("selfcheck: buffered-barrier run (seed %d): %w", wl.Seed, err)
		}
		if err := DiffResults("eager barrier", "buffered barrier", ref, resSSB); err != nil {
			return fmt.Errorf("selfcheck: seed %d: %w", wl.Seed, err)
		}
	}

	// Phase 3: serial loop vs the parallel scheduler over all policies.
	logf("selfcheck: phase 3: serial vs parallel scheduler")
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	sched := sim.NewScheduler(workers, workload.NewTraceCache(0))
	parallel := make(map[string][]sim.Result)
	for _, policy := range core.Names() {
		cfg := simBase
		cfg.Policy = policy
		out := make([]sim.Result, seeds)
		parallel[policy] = out
		sched.SubmitSeeds(policy, cfg, wlBase, seeds, out)
	}
	err := sched.Wait()
	sched.Close()
	if err != nil {
		return fmt.Errorf("selfcheck: parallel schedule failed: %w", err)
	}
	for _, policy := range core.Names() {
		for i := 0; i < seeds; i++ {
			if err := DiffResults("serial run", "scheduled run", byPolicy[policy][i], parallel[policy][i]); err != nil {
				return fmt.Errorf("selfcheck: policy %s, seed %d: %w", policy, i, err)
			}
		}
	}
	// Phase 4: the sharded engine. A cross-tree workload gives the shards
	// real remembered-set traffic to exchange; every policy must come out
	// bit-identical between the goroutine-per-shard and serial modes, and
	// the single-shard engine must reproduce the plain simulator.
	logf("selfcheck: phase 4: sharded engine, %d policies x %d seeds", len(core.Names()), seeds)
	wlShard := wlBase
	wlShard.CrossTreeFraction = 0.25
	for i := 0; i < seeds; i++ {
		wl := wlShard
		wl.Seed += int64(i)
		rt, err := cache.Get(wl)
		if err != nil {
			return fmt.Errorf("selfcheck: recording cross-tree workload seed %d: %w", wl.Seed, err)
		}
		if rt.Stats.CrossTreeEdges == 0 {
			return fmt.Errorf("selfcheck: cross-tree workload seed %d produced no cross-tree edges", wl.Seed)
		}
		replay := func(s trace.Sink) error { return rt.Replay(s, nil) }
		for _, policy := range core.Names() {
			cfg := simBase
			cfg.Policy = policy
			cfg.Seed = simBase.Seed + 1000 + int64(i)
			scfg := shard.Config{Shards: 4, EpochEvents: 1 << 12, Sim: cfg}
			serial, err := runShardedOnce(scfg, replay)
			if err != nil {
				return fmt.Errorf("selfcheck: serial sharded run (policy %s, seed %d): %w", policy, wl.Seed, err)
			}
			scfg.Parallel = true
			parallel, err := runShardedOnce(scfg, replay)
			if err != nil {
				return fmt.Errorf("selfcheck: parallel sharded run (policy %s, seed %d): %w", policy, wl.Seed, err)
			}
			if err := DiffShardRuns("serial sharded engine", "parallel sharded engine", serial, parallel); err != nil {
				return fmt.Errorf("selfcheck: policy %s, seed %d: %w", policy, wl.Seed, err)
			}
			if serial.ForeignWrites == 0 || serial.MessagesSent == 0 {
				return fmt.Errorf("selfcheck: policy %s, seed %d: sharded run exchanged no cross-shard traffic (foreign writes %d, messages %d)",
					policy, wl.Seed, serial.ForeignWrites, serial.MessagesSent)
			}
		}

		// Single shard vs the plain simulator: the demux must be a pure
		// pass-through.
		cfg := simBase
		cfg.Policy = core.NameMutatedPartition
		cfg.Seed = simBase.Seed + 1000 + int64(i)
		single, err := runShardedOnce(shard.Config{Shards: 1, EpochEvents: 1 << 12, Sim: cfg}, replay)
		if err != nil {
			return fmt.Errorf("selfcheck: single-shard run (seed %d): %w", wl.Seed, err)
		}
		plain, err := sim.RunRecorded(cfg, rt)
		if err != nil {
			return fmt.Errorf("selfcheck: plain run for single-shard leg (seed %d): %w", wl.Seed, err)
		}
		if err := DiffResults("single-shard engine", "plain simulator", single.PerShard[0].Result, plain); err != nil {
			return fmt.Errorf("selfcheck: seed %d: %w", wl.Seed, err)
		}
		if single.ForeignWrites != 0 || single.DeltasExchanged != 0 {
			return fmt.Errorf("selfcheck: seed %d: single-shard run reports cross-shard traffic (%d foreign writes, %d deltas)",
				wl.Seed, single.ForeignWrites, single.DeltasExchanged)
		}
	}

	logf("selfcheck: all paths agree, all audits passed")
	return nil
}

// runShardedOnce builds a fresh engine for cfg and replays one trace
// through it (engines are single-use).
func runShardedOnce(cfg shard.Config, replay func(trace.Sink) error) (shard.Result, error) {
	eng, err := shard.New(cfg)
	if err != nil {
		return shard.Result{}, err
	}
	return eng.Run(replay)
}

// DiffShardRuns compares two sharded runs of the same configuration,
// ignoring only the wall-clock counters and the Parallel echo (the
// fields that legitimately differ between engine modes). Everything else
// — per-shard simulator results, per-partition garbage, exchange
// counters, and the aggregates — must be bit-identical.
func DiffShardRuns(labelA, labelB string, a, b shard.Result) error {
	if len(a.PerShard) != len(b.PerShard) {
		return fmt.Errorf("%s ran %d shards, %s ran %d", labelA, len(a.PerShard), labelB, len(b.PerShard))
	}
	for i := range a.PerShard {
		sa, sb := a.PerShard[i], b.PerShard[i]
		if err := DiffResults(labelA, labelB, sa.Result, sb.Result); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		sa.BusyNs, sa.ExchangeNs, sa.Result = 0, 0, sim.Result{}
		sb.BusyNs, sb.ExchangeNs, sb.Result = 0, 0, sim.Result{}
		if !reflect.DeepEqual(sa, sb) {
			return fmt.Errorf("shard %d counters diverge between %s and %s:\n  %+v\n  %+v", i, labelA, labelB, sa, sb)
		}
	}
	a.Parallel, a.BusyNsTotal, a.BusyNsMax, a.PerShard = false, 0, 0, nil
	b.Parallel, b.BusyNsTotal, b.BusyNsMax, b.PerShard = false, 0, 0, nil
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("aggregates diverge between %s and %s:\n  %+v\n  %+v", labelA, labelB, a, b)
	}
	return nil
}

// smallWorkload is the self-check workload: the default shape scaled to
// roughly 350 KB live / 1 MB allocated, small enough that the O(heap)
// catalog after every collection stays fast.
func smallWorkload() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.TargetLiveBytes = 350_000
	cfg.TotalAllocBytes = 1_000_000
	cfg.MinDeletions = 400
	cfg.MeanTreeNodes = 80
	cfg.LargeEvery = 500
	cfg.LargeObjectSize = 16384
	return cfg
}

// smallSim is the matching simulator geometry: 8-page partitions so the
// small database still spans enough partitions to exercise selection,
// plus time-series sampling so the differential diff covers the series
// path too.
func smallSim() sim.Config {
	return sim.Config{
		Seed:              1,
		Heap:              heap.Config{PageSize: 4096, PartitionPages: 8, ReserveEmpty: true},
		TriggerOverwrites: 60,
		SampleEvery:       2000,
	}
}
