package sim_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/sim"
	"odbgc/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// goldenWorkload is a reduced-scale workload (≈1/3 of the paper's base)
// so the determinism check stays fast enough for every `go test` run.
func goldenWorkload() workload.Config {
	wl := workload.DefaultConfig()
	wl.TargetLiveBytes = 1_500_000
	wl.TotalAllocBytes = 4_000_000
	wl.MinDeletions = 2000
	return wl
}

func goldenSim(policy string) sim.Config {
	cfg := sim.DefaultConfig(policy)
	cfg.Heap.PartitionPages = 24
	cfg.TriggerOverwrites = 150
	return cfg
}

// TestGoldenDeterminism pins the complete Result of a fixed-seed run for
// every paper policy against a checked-in golden file. Any change to the
// simulation outcome — however small — fails this test, so performance
// refactors of the heap, remembered sets, oracle, buffer, or collector can
// prove they changed no observable behavior.
func TestGoldenDeterminism(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden_results.json")

	got := make(map[string]sim.Result, len(core.PaperNames()))
	for _, policy := range core.PaperNames() {
		res, _, err := sim.RunWorkload(goldenSim(policy), goldenWorkload())
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Series != nil {
			t.Fatalf("%s: unexpected series in golden run", policy)
		}
		got[policy] = res
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d policies, run produced %d", len(want), len(got))
	}
	for policy, w := range want {
		g, ok := got[policy]
		if !ok {
			t.Errorf("golden policy %s missing from run", policy)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: result diverged from golden file\n got: %+v\nwant: %+v", policy, g, w)
		}
	}
}

// TestGoldenCachedReplay pins the suite orchestration's central
// assumption: replaying one recorded workload trace (the shared-cache
// path) produces byte-identical Results to generating the workload live,
// for every paper policy. Combined with TestGoldenDeterminism this proves
// the trace cache changes no observable simulation behavior.
func TestGoldenCachedReplay(t *testing.T) {
	rt, err := workload.Record(goldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range core.PaperNames() {
		direct, _, err := sim.RunWorkload(goldenSim(policy), goldenWorkload())
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		replayed, err := sim.RunRecorded(goldenSim(policy), rt)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !reflect.DeepEqual(direct, replayed) {
			t.Errorf("%s: cached-trace replay diverged from direct generation\n got: %+v\nwant: %+v",
				policy, replayed, direct)
		}
	}
}

// TestGoldenStreamedReplay pins the streaming pipeline's bit-identity
// claim: one fixed-seed trace replayed through every delivery path — the
// decode-once frozen columns, the packed per-event decoder, and the
// chunked on-disk stream (with small chunks, so the prefetch pipeline
// crosses many chunk boundaries) — produces byte-identical Results under
// every paper policy. Combined with TestGoldenDeterminism, the streamed
// path is thereby pinned to the same golden results as a live run.
func TestGoldenStreamedReplay(t *testing.T) {
	rt, err := workload.Record(goldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Frozen == nil {
		t.Fatal("golden workload did not freeze")
	}
	path := filepath.Join(t.TempDir(), "golden.odbgcck")
	if err := rt.WriteChunked(path, 64<<10); err != nil {
		t.Fatal(err)
	}
	streamed, err := workload.OpenStreamed(path)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Stream.Chunks() < 4 {
		t.Fatalf("golden trace has %d chunks; want several to exercise the pipeline", streamed.Stream.Chunks())
	}
	// The file carries no build/churn boundary; copy it so warm-start
	// behavior matches the in-memory trace exactly.
	streamed.Config = rt.Config
	streamed.Stats = rt.Stats
	streamed.BuildEvents = rt.BuildEvents

	packed := *rt
	packed.Frozen = nil

	for _, policy := range core.PaperNames() {
		frozenRes, err := sim.RunRecorded(goldenSim(policy), rt)
		if err != nil {
			t.Fatalf("%s: frozen replay: %v", policy, err)
		}
		packedRes, err := sim.RunRecorded(goldenSim(policy), &packed)
		if err != nil {
			t.Fatalf("%s: packed replay: %v", policy, err)
		}
		streamedRes, err := sim.RunRecorded(goldenSim(policy), streamed)
		if err != nil {
			t.Fatalf("%s: streamed replay: %v", policy, err)
		}
		if !reflect.DeepEqual(packedRes, frozenRes) {
			t.Errorf("%s: packed replay diverged from frozen replay", policy)
		}
		if !reflect.DeepEqual(streamedRes, frozenRes) {
			t.Errorf("%s: streamed chunked replay diverged from frozen replay\n got: %+v\nwant: %+v",
				policy, streamedRes, frozenRes)
		}
	}
}
