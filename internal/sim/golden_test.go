package sim_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/sim"
	"odbgc/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// goldenWorkload is a reduced-scale workload (≈1/3 of the paper's base)
// so the determinism check stays fast enough for every `go test` run.
func goldenWorkload() workload.Config {
	wl := workload.DefaultConfig()
	wl.TargetLiveBytes = 1_500_000
	wl.TotalAllocBytes = 4_000_000
	wl.MinDeletions = 2000
	return wl
}

func goldenSim(policy string) sim.Config {
	cfg := sim.DefaultConfig(policy)
	cfg.Heap.PartitionPages = 24
	cfg.TriggerOverwrites = 150
	return cfg
}

// TestGoldenDeterminism pins the complete Result of a fixed-seed run for
// every paper policy against a checked-in golden file. Any change to the
// simulation outcome — however small — fails this test, so performance
// refactors of the heap, remembered sets, oracle, buffer, or collector can
// prove they changed no observable behavior.
func TestGoldenDeterminism(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden_results.json")

	got := make(map[string]sim.Result, len(core.PaperNames()))
	for _, policy := range core.PaperNames() {
		res, _, err := sim.RunWorkload(goldenSim(policy), goldenWorkload())
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Series != nil {
			t.Fatalf("%s: unexpected series in golden run", policy)
		}
		got[policy] = res
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d policies, run produced %d", len(want), len(got))
	}
	for policy, w := range want {
		g, ok := got[policy]
		if !ok {
			t.Errorf("golden policy %s missing from run", policy)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: result diverged from golden file\n got: %+v\nwant: %+v", policy, g, w)
		}
	}
}

// TestGoldenCachedReplay pins the suite orchestration's central
// assumption: replaying one recorded workload trace (the shared-cache
// path) produces byte-identical Results to generating the workload live,
// for every paper policy. Combined with TestGoldenDeterminism this proves
// the trace cache changes no observable simulation behavior.
func TestGoldenCachedReplay(t *testing.T) {
	rt, err := workload.Record(goldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range core.PaperNames() {
		direct, _, err := sim.RunWorkload(goldenSim(policy), goldenWorkload())
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		replayed, err := sim.RunRecorded(goldenSim(policy), rt)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !reflect.DeepEqual(direct, replayed) {
			t.Errorf("%s: cached-trace replay diverged from direct generation\n got: %+v\nwant: %+v",
				policy, replayed, direct)
		}
	}
}
