// Package sim is the trace-driven simulator (Section 4.2): it applies an
// application event stream to the simulated database through the write
// barrier, activates the collector when the trigger fires, and measures
// what the paper measures — page I/O split between application and
// collector, storage growth, garbage reclaimed, and time-varying series.
package sim

import (
	"fmt"
	"math/rand"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/heap"
	"odbgc/internal/pagebuf"
	"odbgc/internal/remset"
	"odbgc/internal/stats"
	"odbgc/internal/trace"
)

// Config fixes every simulator policy decision except the one under study
// (partition selection), mirroring Section 4.1.
type Config struct {
	// Policy is the partition selection policy name (see core.Names).
	Policy string
	// PolicyImpl, when non-nil, is used instead of looking Policy up in
	// the registry — the hook for evaluating custom selection policies
	// against the paper's. Policy may then be any descriptive name.
	// Multi-seed harnesses serialize runs sharing a PolicyImpl unless it
	// implements core.ClonablePolicy.
	PolicyImpl core.Policy
	// PolicyFactory, when non-nil (and PolicyImpl is nil), constructs the
	// run's policy instance. Unlike a shared PolicyImpl, a factory gives
	// every run an independent instance, so custom policies parallelize
	// across seeds. It must be safe to call from concurrent goroutines.
	PolicyFactory func() core.Policy
	// Seed drives the simulator's own randomness (only the Random policy
	// uses it). It is independent of the workload seed.
	Seed int64
	// Heap is the database geometry. Heap.ReserveEmpty is forced to match
	// the policy: NoCollection runs without a reserved empty partition.
	Heap heap.Config
	// BufferPages sizes the I/O buffer; 0 means "equal to one partition",
	// the paper's choice.
	BufferPages int
	// Replacement selects the buffer replacement algorithm. The zero
	// value is LRU (the paper's choice); pagebuf.Clock is provided as an
	// ablation.
	Replacement pagebuf.Replacement
	// Traversal selects the collection copy order: gc.BreadthFirst (the
	// paper's choice, the zero value) or gc.PageFirst (the Matthews-style
	// page-minimizing traversal from the paper's related work).
	Traversal gc.Traversal
	// ClientCachePages, when positive, switches to the client/server
	// architecture of the paper's related work (Yong/Naughton/Yu): a
	// client page cache of this size sits in front of the server buffer
	// (BufferPages). AppIOs/GCIOs then count client–server page
	// transfers, and the Disk* result fields count the server's disk
	// operations. Requires the LRU replacement (the default).
	ClientCachePages int
	// TriggerOverwrites activates the collector every N pointer
	// overwrites (the paper: 150–300).
	TriggerOverwrites int64
	// TriggerAllocationBytes, when positive, replaces the overwrite
	// trigger with the alternative "when to collect" policy from the
	// paper's Table 1: collect every N allocated bytes.
	TriggerAllocationBytes int64
	// SampleEvery records a time-series sample every N application events
	// (0 disables sampling). Samples power Figures 4 and 5.
	SampleEvery int64
	// Paranoid audits the remembered sets after every collection. Orders
	// of magnitude slower; for tests.
	Paranoid bool
	// CollectPartitions is how many partitions one activation collects
	// (the paper's algorithms collect exactly 1; >1 is the multi-partition
	// extension). 0 means 1.
	CollectPartitions int
	// GlobalSweepEvery runs a global marking pass (gc.Collector.GlobalSweep)
	// after every N collections, purging remembered-set entries whose
	// sources are dead so cross-partition cyclic garbage becomes
	// collectable — the paper's Section 6.5 future work. 0 disables it.
	GlobalSweepEvery int
	// BufferedBarrier maintains the remembered sets through a sequential
	// store buffer drained at collection time instead of eagerly at each
	// store (the paper's Table 1 alternative barrier implementation).
	// Results are identical under the I/O cost model.
	BufferedBarrier bool
	// WarmStart discards the build phase from the measurement: counters,
	// I/O statistics, high-water marks, and time series restart when the
	// workload's initial forest is complete. The paper measures cold
	// starts and notes they only lessen the differentiation among
	// policies; this option quantifies that remark.
	WarmStart bool
	// Audit wires an external cross-structure invariant auditor into the
	// run (internal/check supplies the full catalog). The zero value is
	// off and adds no cost to the event path beyond one nil check.
	Audit AuditConfig
	// Record wires a structured run recorder into the run
	// (internal/record supplies the batch recorder and on-disk format).
	// The zero value is off and adds no cost to the event path: the hooks
	// fire only inside collector activations and time-series samples,
	// never per event.
	Record RecordConfig
}

// AuditConfig configures the invariant-audit cadence of a simulation.
type AuditConfig struct {
	// Check is invoked at the cadence below with the simulator whose
	// live state it should verify; a non-nil error aborts the run (Emit
	// returns it, naming the violated invariant). nil disables auditing.
	Check func(*Sim) error
	// EveryCollections invokes Check after every Nth collector
	// activation (1 = after every collection); 0 disables this cadence.
	EveryCollections int
	// EveryEvents invokes Check every N application events; 0 disables
	// this cadence. Check still runs only between events, never inside
	// one.
	EveryEvents int64
}

// DefaultConfig returns the simulator configuration for the paper's
// Tables 2–4: 48-page partitions, buffer equal to a partition, collection
// every 280 overwrites.
func DefaultConfig(policy string) Config {
	return Config{
		Policy:            policy,
		Seed:              1,
		Heap:              heap.DefaultConfig(),
		TriggerOverwrites: 280,
	}
}

func (c Config) validate() error {
	if c.Policy == "" {
		return fmt.Errorf("sim: no policy configured")
	}
	if c.TriggerOverwrites <= 0 && c.TriggerAllocationBytes <= 0 {
		return fmt.Errorf("sim: a positive TriggerOverwrites or TriggerAllocationBytes is required")
	}
	if c.BufferPages < 0 {
		return fmt.Errorf("sim: BufferPages %d negative", c.BufferPages)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("sim: SampleEvery %d negative", c.SampleEvery)
	}
	if c.CollectPartitions < 0 {
		return fmt.Errorf("sim: CollectPartitions %d negative", c.CollectPartitions)
	}
	if c.GlobalSweepEvery < 0 {
		return fmt.Errorf("sim: GlobalSweepEvery %d negative", c.GlobalSweepEvery)
	}
	if c.ClientCachePages < 0 {
		return fmt.Errorf("sim: ClientCachePages %d negative", c.ClientCachePages)
	}
	if c.ClientCachePages > 0 && c.Replacement != pagebuf.LRU {
		return fmt.Errorf("sim: client/server mode supports only the LRU replacement")
	}
	if c.Audit.EveryCollections < 0 {
		return fmt.Errorf("sim: Audit.EveryCollections %d negative", c.Audit.EveryCollections)
	}
	if c.Audit.EveryEvents < 0 {
		return fmt.Errorf("sim: Audit.EveryEvents %d negative", c.Audit.EveryEvents)
	}
	return nil
}

// Sim wires the substrates together and consumes a trace. It implements
// trace.Sink, so a workload generator or trace reader can stream into it.
type Sim struct {
	cfg Config

	h      *heap.Heap
	buf    *pagebuf.Buffer
	tiered *pagebuf.Tiered // non-nil in client/server mode
	rem    *remset.Table
	pol    core.Policy
	mut    *gc.Mutator
	col    *gc.Collector
	trig   gc.Trigger
	oracle *heap.Oracle

	events                int64
	lastOverwrite         int64
	maxOccupied           int64
	maxFootprint          int64
	collectionsSinceSweep int
	globalSweeps          int64
	series                *stats.Series
	finished              bool

	// Audit cadence state; untouched when cfg.Audit.Check is nil.
	activationsSinceAudit int
	auditDue              bool

	// Record sequence counters; untouched when cfg.Record is zero.
	activationSeq int64
	sampleSeq     int64

	// Measurement window baselines, nonzero after ResetMeasurement.
	occupiedAtReset int64
	allocAtReset    int64
}

// New builds a simulator from cfg.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hCfg := cfg.Heap
	hCfg.ReserveEmpty = cfg.Policy != core.NameNoCollection
	h, err := heap.New(hCfg)
	if err != nil {
		return nil, err
	}
	bufPages := cfg.BufferPages
	if bufPages == 0 {
		bufPages = hCfg.PartitionPages
	}
	var (
		buf    *pagebuf.Buffer
		tiered *pagebuf.Tiered
	)
	if cfg.ClientCachePages > 0 {
		tiered, err = pagebuf.NewTiered(cfg.ClientCachePages, bufPages)
		if err != nil {
			return nil, err
		}
		buf = tiered.Client()
	} else {
		buf, err = pagebuf.NewWithReplacement(bufPages, cfg.Replacement)
		if err != nil {
			return nil, err
		}
	}
	pol := cfg.PolicyImpl
	if pol == nil && cfg.PolicyFactory != nil {
		if pol = cfg.PolicyFactory(); pol == nil {
			return nil, fmt.Errorf("sim: PolicyFactory returned nil")
		}
	}
	if pol == nil {
		pol, err = core.New(cfg.Policy, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
	}
	rem := remset.New(h)
	oracle := heap.NewOracle(h)
	env := &core.Env{Heap: h, Oracle: oracle, Rand: rand.New(rand.NewSource(cfg.Seed + 1))}
	var trig gc.Trigger
	if cfg.TriggerAllocationBytes > 0 {
		trig, err = gc.NewAllocationTrigger(cfg.TriggerAllocationBytes)
	} else {
		trig, err = gc.NewOverwriteTrigger(cfg.TriggerOverwrites)
	}
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:    cfg,
		h:      h,
		buf:    buf,
		tiered: tiered,
		rem:    rem,
		pol:    pol,
		mut:    gc.NewMutator(h, buf, rem, pol),
		col:    gc.NewCollector(h, buf, rem, pol, env),
		trig:   trig,
		oracle: oracle,
	}
	s.col.SetParanoid(cfg.Paranoid)
	s.col.SetTraversal(cfg.Traversal)
	s.mut.SetBufferedBarrier(cfg.BufferedBarrier)
	if cfg.SampleEvery > 0 {
		s.series = stats.NewSeries("events",
			"occupied_kb", "live_kb", "unreclaimed_garbage_kb", "footprint_kb")
	}
	return s, nil
}

// Heap exposes the simulated database (read-only use intended).
func (s *Sim) Heap() *heap.Heap { return s.h }

// Events reports the number of application events applied.
func (s *Sim) Events() int64 { return s.events }

// Remset exposes the remembered sets (read-only use intended; the audit
// layer reconciles them against the heap).
func (s *Sim) Remset() *remset.Table { return s.rem }

// Buffer exposes the page buffer — the client tier in client/server mode.
func (s *Sim) Buffer() *pagebuf.Buffer { return s.buf }

// Tiered exposes the client/server buffer pair, nil in single-process mode.
func (s *Sim) Tiered() *pagebuf.Tiered { return s.tiered }

// Oracle exposes the reachability oracle over the simulated heap.
func (s *Sim) Oracle() *heap.Oracle { return s.oracle }

// Config returns the run's configuration.
func (s *Sim) Config() Config { return s.cfg }

// SetExternalRoots forwards an additional evacuation root source to the
// collector (gc.Collector.SetExternalRoots). The sharded engine uses it
// to keep objects referenced from other shards alive.
func (s *Sim) SetExternalRoots(fn func(victim heap.PartitionID, add func(heap.OID))) {
	s.col.SetExternalRoots(fn)
}

// SetOnDiscard forwards a discard observer to the collector
// (gc.Collector.SetOnDiscard). The sharded engine uses it to retract
// remset deltas for a dying object's cross-shard pointers.
func (s *Sim) SetOnDiscard(fn func(oid heap.OID)) { s.col.SetOnDiscard(fn) }

// NoteForeignOverwrite records a pointer overwrite whose previous value
// was a reference outside this simulator's heap — the sharded engine's
// cross-shard references, which are stored as nil locally. The note
// feeds the collection trigger exactly as a local overwrite does, so a
// sharded run's trigger cadence matches what an unsharded simulator
// would see for the same stores.
func (s *Sim) NoteForeignOverwrite() {
	s.mut.NoteForeignOverwrite()
	if n := s.mut.OverwritesSinceCollection(); n > s.lastOverwrite {
		s.lastOverwrite = n
		if s.trig.RecordOverwrite() {
			s.collect(CauseOverwrite) //odbgc:alloc-ok collection allocates amortized collector state, off the per-event fast path
		}
	}
}

// CollectorStats returns the collector counters for the current
// measurement window.
func (s *Sim) CollectorStats() gc.CollectorStats { return s.col.Stats() }

// CollectorLifetime returns collector counters accumulated since
// construction, unaffected by ResetMeasurement — the baseline for
// byte-conservation audits, which must hold across warm-start resets.
func (s *Sim) CollectorLifetime() gc.CollectorStats { return s.col.Lifetime() }

// MutatorStats returns the mutator counters for the current window.
func (s *Sim) MutatorStats() gc.MutatorStats { return s.mut.Stats() }

// Emit applies one application event, implementing trace.Sink. With
// auditing off and the time series disabled, the steady-state event loop
// must not allocate (pinned by the Emit AllocsPerRun guard in
// internal/check).
//
//odbgc:hotpath
func (s *Sim) Emit(e trace.Event) error {
	if s.finished {
		return fmt.Errorf("sim: Emit after Finish") //odbgc:alloc-ok cold error path
	}
	if err := e.Validate(); err != nil { //odbgc:alloc-ok error path formats its report
		return err
	}
	switch e.Kind {
	case trace.KindCreate:
		if err := s.mut.Alloc(e.OID, e.Size, e.NFields, e.Parent, e.ParentField); err != nil { //odbgc:alloc-ok error path formats its report
			return err
		}
		s.trackStorage()
		if s.trig.RecordAllocation(e.Size) {
			s.collect(CauseAllocation) //odbgc:alloc-ok collection allocates amortized collector state, off the per-event fast path
		}
	case trace.KindRoot:
		if err := s.mut.Root(e.OID); err != nil { //odbgc:alloc-ok error path formats its report
			return err
		}
	case trace.KindRead:
		if err := s.mut.Read(e.OID); err != nil { //odbgc:alloc-ok error path formats its report
			return err
		}
	case trace.KindWrite:
		if err := s.mut.Write(e.OID, e.Field, e.Target); err != nil { //odbgc:alloc-ok error path formats its report
			return err
		}
		if n := s.mut.OverwritesSinceCollection(); n > s.lastOverwrite {
			s.lastOverwrite = n
			if s.trig.RecordOverwrite() {
				s.collect(CauseOverwrite) //odbgc:alloc-ok collection allocates amortized collector state, off the per-event fast path
			}
		}
	case trace.KindModify:
		if err := s.mut.Modify(e.OID); err != nil { //odbgc:alloc-ok error path formats its report
			return err
		}
	}
	s.events++
	if s.series != nil && s.events%s.cfg.SampleEvery == 0 {
		s.sample()
	}
	if s.cfg.Audit.Check != nil {
		return s.auditTick()
	}
	return nil
}

// auditTick fires the configured check when a cadence is due. It runs at
// the end of Emit so the check always observes the quiescent state
// between events, never the middle of one.
func (s *Sim) auditTick() error {
	due := s.auditDue
	s.auditDue = false
	if !due && s.cfg.Audit.EveryEvents > 0 && s.events%s.cfg.Audit.EveryEvents == 0 {
		due = true
	}
	if !due {
		return nil
	}
	return s.Audit() //odbgc:alloc-ok audit failure formats its report
}

// Audit runs the configured invariant check immediately, regardless of
// cadence. The buffered write barrier is drained first so the remembered
// sets reflect every store applied so far (a no-op under the eager
// barrier). Returns nil when no check is configured.
func (s *Sim) Audit() error {
	if s.cfg.Audit.Check == nil {
		return nil
	}
	s.mut.DrainBarrier()
	if err := s.cfg.Audit.Check(s); err != nil {
		return fmt.Errorf("sim: audit after %d events (policy %s, seed %d): %w",
			s.events, s.cfg.Policy, s.cfg.Seed, err)
	}
	return nil
}

// collect runs one collector activation (possibly multi-partition under
// the extension) and resets the trigger. cause is the trigger that
// fired, threaded through to the activation records.
func (s *Sim) collect(cause TriggerCause) {
	s.mut.DrainBarrier()
	n := s.cfg.CollectPartitions
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		var before pagebuf.Stats
		if s.cfg.Record.Activation != nil {
			before = s.buf.Stats()
		}
		res := s.col.Collect()
		if s.cfg.Record.Activation != nil {
			s.recordActivation(cause, res, before)
		}
		if !res.Collected {
			break
		}
		s.collectionsSinceSweep++
	}
	if s.cfg.GlobalSweepEvery > 0 && s.collectionsSinceSweep >= s.cfg.GlobalSweepEvery {
		s.collectionsSinceSweep = 0
		s.col.GlobalSweep()
		s.globalSweeps++
	}
	s.trig.Reset()
	s.mut.ResetOverwrites()
	s.lastOverwrite = 0
	if s.cfg.Audit.Check != nil && s.cfg.Audit.EveryCollections > 0 {
		s.activationsSinceAudit++
		if s.activationsSinceAudit >= s.cfg.Audit.EveryCollections {
			s.activationsSinceAudit = 0
			s.auditDue = true
		}
	}
}

// ResetMeasurement restarts the measurement window at the current
// database state: I/O statistics, mutator and collector counters, event
// count, high-water marks, and the time series are cleared; the heap,
// buffer contents, remembered sets, and policy state are untouched.
func (s *Sim) ResetMeasurement() {
	if s.tiered != nil {
		s.tiered.ResetStats()
	} else {
		s.buf.ResetStats()
	}
	s.col.ResetStats()
	s.mut.ResetStats()
	s.events = 0
	s.maxOccupied = s.h.OccupiedBytes()
	s.maxFootprint = s.h.FootprintBytes()
	s.occupiedAtReset = s.h.OccupiedBytes()
	s.allocAtReset = s.h.TotalAllocatedBytes()
	if s.series != nil {
		s.series = stats.NewSeries(s.series.XName, s.series.Names...)
	}
}

// trackStorage updates the storage high-water marks; occupied bytes only
// grow at allocations, so Emit calls it on creates.
func (s *Sim) trackStorage() {
	if occ := s.h.OccupiedBytes(); occ > s.maxOccupied {
		s.maxOccupied = occ
	}
	if fp := s.h.FootprintBytes(); fp > s.maxFootprint {
		s.maxFootprint = fp
	}
}

// sample appends one time-series row (sizes in KB) and, when recording,
// delivers the same quantities in raw bytes.
func (s *Sim) sample() {
	occupied := s.h.OccupiedBytes()
	live := s.oracle.LiveBytes()
	footprint := s.h.FootprintBytes()
	s.series.Add(s.events, //odbgc:alloc-ok amortized series growth, off the replay fast path
		float64(occupied)/1024,
		float64(live)/1024,
		float64(occupied-live)/1024,
		float64(footprint)/1024,
	)
	if s.cfg.Record.Sample != nil {
		s.sampleSeq++
		bufStats := s.buf.Stats()
		s.cfg.Record.Sample(SampleRecord{
			Seq:                 s.sampleSeq,
			Events:              s.events,
			OccupiedBytes:       occupied,
			LiveBytes:           live,
			FootprintBytes:      footprint,
			AppIOs:              bufStats.App().IOs(),
			GCIOs:               bufStats.GC().IOs(),
			TotalAllocatedBytes: s.h.TotalAllocatedBytes(),
		})
	}
}

// Result is everything the paper reports about one run.
type Result struct {
	// Policy and Events identify the run.
	Policy string
	Events int64

	// AppIOs, GCIOs, TotalIOs are disk page operations (Table 2).
	AppIOs, GCIOs, TotalIOs int64

	// MaxOccupiedBytes is the storage high-water mark including
	// unreclaimed garbage (Table 3); MaxFootprintBytes additionally counts
	// partition-grain external fragmentation. NumPartitions is the final
	// partition count.
	MaxOccupiedBytes  int64
	MaxFootprintBytes int64
	NumPartitions     int

	// Collections and reclamation totals (Table 4). Declined counts
	// trigger activations where the policy chose not to collect; the
	// trigger-parity audit relies on Collections+Declined being a pure
	// function of the workload.
	Collections      int64
	Declined         int64
	ReclaimedBytes   int64
	ReclaimedObjects int64
	CopiedBytes      int64
	CopiedObjects    int64

	// ActualGarbageBytes is every byte of garbage available during the
	// measurement window: garbage present at its start plus garbage
	// created within it. For the default cold start this is simply
	// allocated minus live-at-end — the paper's "Actual Garbage" row.
	ActualGarbageBytes int64
	// FinalLiveBytes and FinalOccupiedBytes describe the end state.
	FinalLiveBytes     int64
	FinalOccupiedBytes int64

	// TotalAllocatedBytes is cumulative allocation (Figure 6's x-axis).
	TotalAllocatedBytes int64

	// Overwrites is the number of pointer overwrites the application
	// performed.
	Overwrites int64

	// GlobalSweeps counts the global marking passes performed (the
	// cross-partition cycle extension; 0 unless GlobalSweepEvery is set).
	GlobalSweeps int64

	// DiskAppIOs, DiskGCIOs, DiskTotalIOs count the server's disk
	// operations in client/server mode (ClientCachePages > 0), where
	// AppIOs/GCIOs count network page transfers instead. Zero in the
	// paper's single-process mode.
	DiskAppIOs, DiskGCIOs, DiskTotalIOs int64

	// Series holds the time-varying samples when sampling was enabled.
	Series *stats.Series
}

// FractionReclaimed returns reclaimed bytes over actual garbage bytes
// (Table 4's "Fraction of Garbage Reclaimed").
func (r Result) FractionReclaimed() float64 {
	if r.ActualGarbageBytes == 0 {
		return 0
	}
	return float64(r.ReclaimedBytes) / float64(r.ActualGarbageBytes)
}

// EfficiencyKBPerIO returns reclaimed kilobytes per collector I/O
// (Table 4's "Collector Efficiency").
func (r Result) EfficiencyKBPerIO() float64 {
	if r.GCIOs == 0 {
		return 0
	}
	return float64(r.ReclaimedBytes) / 1024 / float64(r.GCIOs)
}

// Finish computes the run's Result. The simulator cannot be used after.
func (s *Sim) Finish() Result {
	s.finished = true
	s.trackStorage()
	bufStats := s.buf.Stats()
	colStats := s.col.Stats()
	live := s.oracle.LiveBytes()
	res := Result{
		Policy:              s.cfg.Policy,
		Events:              s.events,
		AppIOs:              bufStats.App().IOs(),
		GCIOs:               bufStats.GC().IOs(),
		TotalIOs:            bufStats.TotalIOs(),
		MaxOccupiedBytes:    s.maxOccupied,
		MaxFootprintBytes:   s.maxFootprint,
		NumPartitions:       s.h.NumPartitions(),
		Collections:         colStats.Collections,
		Declined:            colStats.Declined,
		ReclaimedBytes:      colStats.ReclaimedBytes,
		ReclaimedObjects:    colStats.ReclaimedObjects,
		CopiedBytes:         colStats.CopiedBytes,
		CopiedObjects:       colStats.CopiedObjects,
		ActualGarbageBytes:  s.occupiedAtReset + (s.h.TotalAllocatedBytes() - s.allocAtReset) - live,
		FinalLiveBytes:      live,
		FinalOccupiedBytes:  s.h.OccupiedBytes(),
		TotalAllocatedBytes: s.h.TotalAllocatedBytes(),
		Overwrites:          s.mut.Stats().TotalOverwrites,
		GlobalSweeps:        s.globalSweeps,
		Series:              s.series,
	}
	if s.tiered != nil {
		disk := s.tiered.DiskStats()
		res.DiskAppIOs = disk.App().IOs()
		res.DiskGCIOs = disk.GC().IOs()
		res.DiskTotalIOs = disk.TotalIOs()
	}
	return res
}
