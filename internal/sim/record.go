package sim

import (
	"odbgc/internal/gc"
	"odbgc/internal/pagebuf"
)

// Structured run recording: the simulator-side half of internal/record.
// The hooks below mirror Config.Audit's zero-cost discipline — the zero
// value is off, the steady-state event loop pays nothing (the hooks fire
// only inside collect() and sample(), which are already off the per-event
// hot path; Emit itself is unchanged and stays pinned by its AllocsPerRun
// guard), and a non-nil hook observes the simulator only between events.

// RecordConfig wires a structured run recorder into a simulation. Both
// hooks are optional; nil disables that record stream. The hooks are
// invoked synchronously on the simulating goroutine and must not retain
// the record past the call unless they copy it (the records are plain
// values, so an append into a batch buffer is a copy).
type RecordConfig struct {
	// Activation is invoked once per collector activation — including
	// activations the policy declined — with the per-activation facts the
	// paper's tables are built from.
	Activation func(ActivationRecord)
	// Sample is invoked once per time-series sample, alongside the
	// Series row (so it fires only when SampleEvery > 0), with the
	// Figure 4–6 quantities in raw bytes.
	Sample func(SampleRecord)
}

// TriggerCause identifies which "when to collect" policy fired an
// activation (the paper's Table 1: pointer overwrites or allocation
// volume).
type TriggerCause uint8

const (
	// CauseOverwrite is the overwrite trigger (including foreign
	// overwrites noted by the sharded engine).
	CauseOverwrite TriggerCause = iota
	// CauseAllocation is the allocation-volume trigger.
	CauseAllocation
)

// String names the cause the way the record file stores it.
func (c TriggerCause) String() string {
	switch c {
	case CauseOverwrite:
		return "overwrite"
	case CauseAllocation:
		return "allocation"
	default:
		return "unknown"
	}
}

// ActivationRecord is one collector activation: what the policy chose,
// what the evacuation found, and what it cost. All byte/IO fields are
// raw counts; KB/MB scaling is left to the reporting layer so recorded
// runs can be re-aggregated bit-identically.
type ActivationRecord struct {
	// Seq numbers activations within the run from 1; Events is the
	// virtual time (application events applied when the trigger fired).
	Seq    int64
	Events int64
	// Cause is the trigger that fired.
	Cause TriggerCause
	// Collected is false when the policy declined (NoCollection); the
	// partition fields are then -1.
	Collected bool
	// Victim is the partition the policy chose; Dest received the
	// survivors.
	Victim, Dest int64
	// GarbageBytes/Objects is the garbage reclaimed by this activation;
	// CopiedBytes/Objects the survivors evacuated.
	GarbageBytes, GarbageObjects int64
	CopiedBytes, CopiedObjects   int64
	// GCReadIOs/GCWriteIOs are the collector's disk pages read and
	// written during this activation; BufHits/BufMisses its buffer hits
	// and misses (per-activation deltas of the GC actor's counters).
	GCReadIOs, GCWriteIOs int64
	BufHits, BufMisses    int64
	// AppReadIOs/AppWriteIOs are the application's cumulative disk reads
	// and writes at the end of the activation — the app side of the
	// paper's I/O split on the activation's virtual-time axis.
	AppReadIOs, AppWriteIOs int64
	// OccupiedBytes is the database size after the activation.
	OccupiedBytes int64
}

// SampleRecord is one time-series sample: the Figure 4–6 quantities in
// raw bytes plus the cumulative I/O split at the sample instant.
type SampleRecord struct {
	// Seq numbers samples within the run from 1; Events is the virtual
	// time.
	Seq    int64
	Events int64
	// OccupiedBytes includes unreclaimed garbage (Figure 5); LiveBytes
	// is reachable data; FootprintBytes adds partition-grain external
	// fragmentation. Unreclaimed garbage (Figure 4) is Occupied − Live.
	OccupiedBytes, LiveBytes, FootprintBytes int64
	// AppIOs/GCIOs are cumulative disk operations by actor.
	AppIOs, GCIOs int64
	// TotalAllocatedBytes is cumulative allocation (Figure 6's x-axis).
	TotalAllocatedBytes int64
}

// recordActivation assembles and delivers one ActivationRecord. Only
// called when the Activation hook is non-nil; before is the buffer-stats
// snapshot taken just before the activation.
func (s *Sim) recordActivation(cause TriggerCause, res gc.CollectionResult, before pagebuf.Stats) {
	after := s.buf.Stats()
	s.activationSeq++
	victim, dest := int64(res.Victim), int64(res.Dest)
	if !res.Collected {
		victim, dest = -1, -1
	}
	s.cfg.Record.Activation(ActivationRecord{
		Seq:            s.activationSeq,
		Events:         s.events,
		Cause:          cause,
		Collected:      res.Collected,
		Victim:         victim,
		Dest:           dest,
		GarbageBytes:   res.ReclaimedBytes,
		GarbageObjects: res.ReclaimedObjects,
		CopiedBytes:    res.CopiedBytes,
		CopiedObjects:  res.CopiedObjects,
		GCReadIOs:      after.GC().ReadIOs - before.GC().ReadIOs,
		GCWriteIOs:     after.GC().WriteIOs - before.GC().WriteIOs,
		BufHits:        after.GC().Hits - before.GC().Hits,
		BufMisses:      after.GC().Misses - before.GC().Misses,
		AppReadIOs:     after.App().ReadIOs,
		AppWriteIOs:    after.App().WriteIOs,
		OccupiedBytes:  s.h.OccupiedBytes(),
	})
}
