package sim

import (
	"fmt"
	"runtime"

	"odbgc/internal/stats"
	"odbgc/internal/workload"
)

// RunWorkload streams a freshly generated workload into a fresh simulator
// and returns both sides' results.
func RunWorkload(simCfg Config, wlCfg workload.Config) (Result, workload.Stats, error) {
	s, err := New(simCfg)
	if err != nil {
		return Result{}, workload.Stats{}, err
	}
	g, err := workload.New(wlCfg)
	if err != nil {
		return Result{}, workload.Stats{}, err
	}
	if simCfg.WarmStart {
		g.SetBuildCompleteHook(s.ResetMeasurement)
	}
	wlStats, err := g.Run(s)
	if err != nil {
		return Result{}, wlStats, fmt.Errorf("sim: workload replay failed: %w", err)
	}
	return s.Finish(), wlStats, nil
}

// RunSource streams any trace source (e.g. the OO1-style workload) into a
// fresh simulator.
func RunSource(simCfg Config, src workload.Source) (Result, workload.Stats, error) {
	s, err := New(simCfg)
	if err != nil {
		return Result{}, workload.Stats{}, err
	}
	st, err := src.Run(s)
	if err != nil {
		return Result{}, st, fmt.Errorf("sim: source replay failed: %w", err)
	}
	return s.Finish(), st, nil
}

// RunRecorded replays a recorded workload trace into a fresh simulator.
// The result is bit-identical to RunWorkload with the trace's generating
// configuration: the recorded stream is the same event sequence a live
// generator emits, and warm starts reset measurement at the identical
// build/churn boundary.
func RunRecorded(simCfg Config, rt *workload.RecordedTrace) (Result, error) {
	s, err := New(simCfg)
	if err != nil {
		return Result{}, err
	}
	var hook func()
	if simCfg.WarmStart {
		hook = s.ResetMeasurement
	}
	if err := rt.Replay(s, hook); err != nil {
		return Result{}, fmt.Errorf("sim: trace replay failed: %w", err)
	}
	return s.Finish(), nil
}

// RunSeeds repeats RunWorkload n times with derived seeds (workload seed
// base+i, simulator seed base+1000+i), the way the paper averages each
// configuration over 10 differently seeded runs. Runs are drained by a
// Scheduler worker pool (each simulation is fully independent and
// deterministic given its seeds); results are returned in seed order. A
// custom policy shared via Config.PolicyImpl serializes the runs in seed
// order unless it implements core.ClonablePolicy or is supplied through
// Config.PolicyFactory, either of which parallelizes like the built-ins.
func RunSeeds(simCfg Config, wlCfg workload.Config, n int) ([]Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: RunSeeds needs a positive run count, got %d", n)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	// No trace cache: each derived seed's trace is replayed exactly once.
	s := NewScheduler(workers, nil)
	defer s.Close()
	results := make([]Result, n)
	s.SubmitSeeds(simCfg.Policy, simCfg, wlCfg, n, results)
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return results, nil
}

// Aggregate summarizes a set of same-configuration runs, one Summary per
// reported metric.
type Aggregate struct {
	Policy string
	N      int

	AppIOs, GCIOs, TotalIOs stats.Summary

	MaxOccupiedKB stats.Summary
	NumPartitions stats.Summary

	Collections       stats.Summary
	ReclaimedKB       stats.Summary
	FractionReclaimed stats.Summary // percent
	EfficiencyKBPerIO stats.Summary
	ActualGarbageKB   stats.Summary
}

// Aggregates computes an Aggregate from per-seed results. All results must
// share a policy.
func Aggregates(results []Result) Aggregate {
	agg := Aggregate{N: len(results)}
	if len(results) == 0 {
		return agg
	}
	agg.Policy = results[0].Policy
	collect := func(f func(Result) float64) stats.Summary {
		xs := make([]float64, len(results))
		for i, r := range results {
			if r.Policy != agg.Policy {
				panic(fmt.Sprintf("sim: Aggregates mixes policies %q and %q", agg.Policy, r.Policy))
			}
			xs[i] = f(r)
		}
		return stats.Summarize(xs)
	}
	agg.AppIOs = collect(func(r Result) float64 { return float64(r.AppIOs) })
	agg.GCIOs = collect(func(r Result) float64 { return float64(r.GCIOs) })
	agg.TotalIOs = collect(func(r Result) float64 { return float64(r.TotalIOs) })
	agg.MaxOccupiedKB = collect(func(r Result) float64 { return float64(r.MaxOccupiedBytes) / 1024 })
	agg.NumPartitions = collect(func(r Result) float64 { return float64(r.NumPartitions) })
	agg.Collections = collect(func(r Result) float64 { return float64(r.Collections) })
	agg.ReclaimedKB = collect(func(r Result) float64 { return float64(r.ReclaimedBytes) / 1024 })
	agg.FractionReclaimed = collect(func(r Result) float64 { return 100 * r.FractionReclaimed() })
	agg.EfficiencyKBPerIO = collect(Result.EfficiencyKBPerIO)
	agg.ActualGarbageKB = collect(func(r Result) float64 { return float64(r.ActualGarbageBytes) / 1024 })
	return agg
}
