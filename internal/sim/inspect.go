package sim

import "odbgc/internal/heap"

// PartitionInfo describes one partition's occupancy at inspection time.
type PartitionInfo struct {
	ID heap.PartitionID
	// Empty marks the reserved empty partition.
	Empty bool
	// UsedBytes is live + unreclaimed garbage; LiveBytes and GarbageBytes
	// split it using the oracle.
	UsedBytes    int64
	LiveBytes    int64
	GarbageBytes int64
	// Objects is the resident object count; RemsetEntries the number of
	// remembered pointers into the partition.
	Objects       int
	RemsetEntries int
}

// InspectPartitions returns a per-partition occupancy report, ordered by
// partition ID. It consults the oracle and so reflects exact liveness.
func (s *Sim) InspectPartitions() []PartitionInfo {
	live := s.oracle.Live()
	liveBytes := make([]int64, s.h.NumPartitions())
	live.ForEach(func(oid heap.OID) {
		obj := s.h.Get(oid)
		liveBytes[obj.Partition] += obj.Size
	})
	out := make([]PartitionInfo, s.h.NumPartitions())
	for i := range out {
		pid := heap.PartitionID(i)
		p := s.h.Partition(pid)
		out[i] = PartitionInfo{
			ID:            pid,
			Empty:         pid == s.h.EmptyPartition(),
			UsedBytes:     p.Used(),
			LiveBytes:     liveBytes[i],
			GarbageBytes:  p.Used() - liveBytes[i],
			Objects:       p.Len(),
			RemsetEntries: s.rem.InCount(pid),
		}
	}
	return out
}
