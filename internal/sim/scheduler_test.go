package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/heap"
	"odbgc/internal/workload"
)

// TestSchedulerMixedSuiteMatchesSerial flattens a small mixed suite —
// several policies, seeds, and two workload shapes — through a parallel
// scheduler with a shared trace cache and checks every result is
// bit-identical to a direct serial RunWorkload. Run under -race (ci.sh),
// this is also the scheduler/trace-cache data-race smoke test.
func TestSchedulerMixedSuiteMatchesSerial(t *testing.T) {
	type cell struct {
		sim Config
		wl  workload.Config
	}
	var cells []cell
	wlA := smallWorkload()
	wlB := smallWorkload()
	wlB.DenseEdgeFraction = 0.167
	for _, wl := range []workload.Config{wlA, wlB} {
		for _, policy := range []string{core.NameUpdatedPointer, core.NameRandom, core.NameMostGarbage} {
			for seed := int64(0); seed < 3; seed++ {
				sc := smallSim(policy)
				sc.Seed += seed
				w := wl
				w.Seed += seed
				cells = append(cells, cell{sc, w})
			}
		}
	}

	want := make([]Result, len(cells))
	for i, c := range cells {
		res, _, err := RunWorkload(c.sim, c.wl)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	cache := workload.NewTraceCache(0)
	s := NewScheduler(4, cache)
	defer s.Close()
	var mu sync.Mutex
	var lines []string
	s.SetNotify(func(done, total int64, label string) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf("[%d/%d] %s", done, total, label))
	})
	got := make([]Result, len(cells))
	for i, c := range cells {
		s.Submit(Job{Label: fmt.Sprintf("cell %d", i), Sim: c.sim, WL: c.wl, Out: &got[i]})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cell %d diverged from serial run:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if len(lines) != len(cells) {
		t.Errorf("notify saw %d completions, want %d", len(lines), len(cells))
	}
	st := cache.Stats()
	// 2 workloads × 3 seeds distinct traces, each shared by 3 policies.
	if st.Misses != 6 || st.Hits != int64(len(cells))-6 {
		t.Errorf("cache stats = %+v, want 6 misses / %d hits", st, len(cells)-6)
	}
	if s.Submitted() != int64(len(cells)) || s.Completed() != int64(len(cells)) {
		t.Errorf("counters: %d submitted, %d completed", s.Submitted(), s.Completed())
	}
}

func TestSchedulerErrorReportsEarliestJob(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	bad := smallSim(core.NameUpdatedPointer)
	bad.TriggerOverwrites = 0 // fails validation
	out := make([]Result, 3)
	s.Submit(Job{Label: "ok", Sim: smallSim(core.NameRandom), WL: smallWorkload(), Out: &out[0]})
	s.Submit(Job{Label: "bad one", Sim: bad, WL: smallWorkload(), Out: &out[1]})
	s.Submit(Job{Label: "bad two", Sim: bad, WL: smallWorkload(), Out: &out[2]})
	err := s.Wait()
	if err == nil {
		t.Fatal("expected error")
	}
	if want := "bad one"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not name the earliest failed job %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// orderPolicy is a custom policy that records the order it is asked to
// select, to observe serialization; it deliberately does NOT implement
// core.ClonablePolicy.
type orderPolicy struct {
	mu      sync.Mutex
	selects int
}

func (p *orderPolicy) Name() string                    { return "order" }
func (p *orderPolicy) PointerStore(core.StoreContext)  {}
func (p *orderPolicy) DataStore(heap.PartitionID)      {}
func (p *orderPolicy) Collected(_, _ heap.PartitionID) {}
func (p *orderPolicy) Select(env *core.Env) (heap.PartitionID, bool) {
	p.mu.Lock()
	p.selects++
	p.mu.Unlock()
	cands := env.Candidates()
	if len(cands) == 0 {
		return heap.NoPartition, false
	}
	return cands[0], true
}

// clonableOrderPolicy adds Clone, making it eligible for parallel runs.
type clonableOrderPolicy struct{ orderPolicy }

func (p *clonableOrderPolicy) Clone() core.Policy { return &clonableOrderPolicy{} }

func TestSchedulerSerialFallbackForSharedPolicyImpl(t *testing.T) {
	shared := &orderPolicy{}
	cfg := smallSim("custom")
	cfg.PolicyImpl = shared

	// Two scheduler passes over the same jobs must agree exactly: the
	// shared instance is run inline at Submit, in submission order.
	runOnce := func() []Result {
		s := NewScheduler(4, nil)
		defer s.Close()
		out := make([]Result, 4)
		s.SubmitSeeds("custom", cfg, smallWorkload(), 4, out)
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := runOnce()
	shared.mu.Lock()
	selectsAfterFirst := shared.selects
	shared.mu.Unlock()
	if selectsAfterFirst == 0 {
		t.Fatal("shared policy never selected")
	}
	second := runOnce()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("serial-fallback runs are not deterministic")
	}
}

func TestSchedulerClonablePolicyMatchesFactory(t *testing.T) {
	viaClone := smallSim("custom")
	viaClone.PolicyImpl = &clonableOrderPolicy{}
	viaFactory := smallSim("custom")
	viaFactory.PolicyFactory = func() core.Policy { return &clonableOrderPolicy{} }

	cloneRes, err := RunSeeds(viaClone, smallWorkload(), 4)
	if err != nil {
		t.Fatal(err)
	}
	factoryRes, err := RunSeeds(viaFactory, smallWorkload(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cloneRes, factoryRes) {
		t.Fatal("clonable PolicyImpl and PolicyFactory runs diverge")
	}
	// The prototype instance must stay untouched: every run used a clone.
	proto := viaClone.PolicyImpl.(*clonableOrderPolicy)
	proto.mu.Lock()
	defer proto.mu.Unlock()
	if proto.selects != 0 {
		t.Fatalf("prototype instance was run directly (%d selects)", proto.selects)
	}
}

func TestRunRecordedWarmStartMatchesLive(t *testing.T) {
	wl := smallWorkload()
	rt, err := workload.Record(wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, warm := range []bool{false, true} {
		cfg := smallSim(core.NameUpdatedPointer)
		cfg.WarmStart = warm
		live, _, err := RunWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := RunRecorded(cfg, rt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Errorf("warm=%v: recorded replay diverged:\n got %+v\nwant %+v", warm, replayed, live)
		}
	}
}
