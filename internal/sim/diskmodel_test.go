package sim

import (
	"strings"
	"testing"
	"time"
)

func TestDiskModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    DiskModel
		want string // substring of the error, "" for valid
	}{
		{"default", DefaultDiskModel(), ""},
		{"modern", ModernDiskModel(), ""},
		{"zero transfer", DiskModel{Seek: time.Millisecond, Rotation: time.Millisecond}, "transfer"},
		{"negative transfer", DiskModel{Seek: time.Millisecond, Rotation: time.Millisecond, Transfer: -1}, "transfer"},
		{"negative seek", DiskModel{Seek: -time.Millisecond, Rotation: time.Millisecond, Transfer: time.Millisecond}, "seek"},
		{"negative rotation", DiskModel{Seek: time.Millisecond, Rotation: -time.Millisecond, Transfer: time.Millisecond}, "rotation"},
		{"all-zero latency", DiskModel{Transfer: time.Millisecond}, "both zero"},
		{"seek only", DiskModel{Seek: time.Millisecond, Transfer: time.Millisecond}, ""},
		{"rotation only", DiskModel{Rotation: time.Millisecond, Transfer: time.Millisecond}, ""},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate() passed, want error naming %q", tc.name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %q, want it to name %q", tc.name, err, tc.want)
		}
	}
}
