package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/workload"
)

func smallOO1() workload.OO1Config {
	cfg := workload.DefaultOO1Config()
	cfg.Parts = 800
	cfg.RefZone = 20
	cfg.LookupBatch = 20
	cfg.TraverseCap = 80
	cfg.MinDeletions = 400
	cfg.TotalOps = 150
	return cfg
}

func runOO1(t *testing.T, policy string, seed int64) Result {
	t.Helper()
	wl := smallOO1()
	wl.Seed = seed
	g, err := workload.NewOO1(wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSim(policy)
	cfg.Seed = seed + 1000
	res, _, err := RunSource(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOO1EndToEnd(t *testing.T) {
	res := runOO1(t, core.NameUpdatedPointer, 1)
	if res.Collections == 0 {
		t.Fatal("no collections under OO1 workload")
	}
	if res.ReclaimedBytes == 0 {
		t.Fatal("nothing reclaimed under OO1 workload")
	}
	if res.ReclaimedBytes > res.ActualGarbageBytes {
		t.Fatalf("reclaimed %d > actual garbage %d", res.ReclaimedBytes, res.ActualGarbageBytes)
	}
	if res.TotalIOs != res.AppIOs+res.GCIOs {
		t.Fatal("I/O accounting broken")
	}
}

func TestOO1Paranoid(t *testing.T) {
	wl := smallOO1()
	g, err := workload.NewOO1(wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSim(core.NameMostGarbage)
	cfg.Paranoid = true // audits remsets after every collection
	if _, _, err := RunSource(cfg, g); err != nil {
		t.Fatal(err)
	}
}

// TestOO1ResultsTransfer checks the paper's central result on the second
// workload: the overwritten-pointer hint still beats random selection.
func TestOO1ResultsTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison is slow")
	}
	sum := func(policy string) int64 {
		var total int64
		for seed := int64(1); seed <= 4; seed++ {
			total += runOO1(t, policy, seed).ReclaimedBytes
		}
		return total
	}
	up, rnd := sum(core.NameUpdatedPointer), sum(core.NameRandom)
	if up <= rnd {
		t.Fatalf("UpdatedPointer reclaimed %d <= Random %d under OO1", up, rnd)
	}
}
