package sim

import (
	"fmt"
	"time"
)

// DiskModel converts counted page I/Os into estimated elapsed disk time —
// the "more detailed cost model" Section 4.2 sketches (head seek,
// rotational delay, transfer time). The simulation's results are counted
// I/Os; this model is presentation-layer arithmetic over them, provided
// so throughput can also be read in seconds.
type DiskModel struct {
	// Seek is the average head seek time per operation.
	Seek time.Duration
	// Rotation is the average rotational delay (half a revolution).
	Rotation time.Duration
	// Transfer is the time to move one page.
	Transfer time.Duration
}

// DefaultDiskModel returns parameters typical of the early-90s disks the
// paper's DECstation would have used: 12 ms average seek, 5.5 ms average
// rotational latency (5400 RPM), ~2 ms to transfer an 8 KB page.
func DefaultDiskModel() DiskModel {
	return DiskModel{
		Seek:     12 * time.Millisecond,
		Rotation: 5500 * time.Microsecond,
		Transfer: 2 * time.Millisecond,
	}
}

// ModernDiskModel returns parameters for a 7200 RPM SATA disk, for
// what-if comparisons: 8.5 ms seek, 4.16 ms rotational latency, ~0.06 ms
// per 8 KB page.
func ModernDiskModel() DiskModel {
	return DiskModel{
		Seek:     8500 * time.Microsecond,
		Rotation: 4160 * time.Microsecond,
		Transfer: 60 * time.Microsecond,
	}
}

// Validate reports the first bad parameter, naming it specifically.
func (m DiskModel) Validate() error {
	switch {
	case m.Transfer <= 0:
		return fmt.Errorf("sim: disk model transfer time %v must be positive", m.Transfer)
	case m.Seek < 0:
		return fmt.Errorf("sim: disk model seek time %v negative", m.Seek)
	case m.Rotation < 0:
		return fmt.Errorf("sim: disk model rotation time %v negative", m.Rotation)
	case m.Seek == 0 && m.Rotation == 0:
		return fmt.Errorf("sim: disk model seek and rotation both zero — not a rotating disk; set at least one positive latency")
	}
	return nil
}

// PerOp returns the modeled time for one page operation.
func (m DiskModel) PerOp() time.Duration { return m.Seek + m.Rotation + m.Transfer }

// Estimate returns the modeled elapsed disk time for n page operations.
func (m DiskModel) Estimate(n int64) time.Duration {
	return time.Duration(n) * m.PerOp()
}

// EstimateResult splits a run's modeled disk time into application and
// collector components.
func (m DiskModel) EstimateResult(r Result) (app, gc, total time.Duration) {
	app = m.Estimate(r.AppIOs)
	gc = m.Estimate(r.GCIOs)
	return app, gc, app + gc
}
