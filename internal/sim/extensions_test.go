package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/pagebuf"
	"odbgc/internal/workload"
)

// workloadNew wraps workload.New for test brevity.
func workloadNew(t *testing.T, cfg workload.Config) (*workload.Generator, error) {
	t.Helper()
	return workload.New(cfg)
}

func TestGlobalSweepExtension(t *testing.T) {
	base := smallSim(core.NameUpdatedPointer)
	wl := smallWorkload()
	wl.DenseEdgeFraction = 0.3 // lots of cross-partition references

	plain, _, err := RunWorkload(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GlobalSweeps != 0 {
		t.Fatalf("sweeps ran without being configured: %d", plain.GlobalSweeps)
	}

	swept := base
	swept.GlobalSweepEvery = 3
	withSweep, _, err := RunWorkload(swept, wl)
	if err != nil {
		t.Fatal(err)
	}
	if withSweep.GlobalSweeps == 0 {
		t.Fatal("configured sweeps never ran")
	}
	// Breaking nepotism can only help reclamation on the same trace.
	if withSweep.ReclaimedBytes < plain.ReclaimedBytes {
		t.Fatalf("sweeping reclaimed less: %d < %d", withSweep.ReclaimedBytes, plain.ReclaimedBytes)
	}
}

func TestAllocationTriggerExtension(t *testing.T) {
	cfg := smallSim(core.NameUpdatedPointer)
	cfg.TriggerOverwrites = 0
	cfg.TriggerAllocationBytes = 20_000
	res, _, err := RunWorkload(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Collections == 0 {
		t.Fatal("allocation trigger never fired")
	}
	if res.ReclaimedBytes == 0 {
		t.Fatal("allocation-triggered collections reclaimed nothing")
	}
}

func TestBufferedBarrierSimEquivalence(t *testing.T) {
	eager := smallSim(core.NameUpdatedPointer)
	buffered := eager
	buffered.BufferedBarrier = true
	a, _, err := RunWorkload(eager, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunWorkload(buffered, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("buffered barrier changed results:\n eager    %+v\n buffered %+v", a, b)
	}
}

func TestClockBufferExtension(t *testing.T) {
	cfg := smallSim(core.NameUpdatedPointer)
	cfg.Replacement = pagebuf.Clock
	res, _, err := RunWorkload(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIOs == 0 || res.Collections == 0 {
		t.Fatalf("degenerate clock run: %+v", res)
	}
	// CLOCK approximates LRU: total I/O should be within a reasonable
	// factor of the LRU run on the identical trace.
	lru, _, err := RunWorkload(smallSim(core.NameUpdatedPointer), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := lru.TotalIOs*7/10, lru.TotalIOs*13/10
	if res.TotalIOs < lo || res.TotalIOs > hi {
		t.Fatalf("clock total I/O %d outside [%d,%d] of LRU's %d",
			res.TotalIOs, lo, hi, lru.TotalIOs)
	}
}

func TestInspectPartitions(t *testing.T) {
	s, err := New(smallSim(core.NameUpdatedPointer))
	if err != nil {
		t.Fatal(err)
	}
	g, err := workloadNew(t, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(s); err != nil {
		t.Fatal(err)
	}
	parts := s.InspectPartitions()
	if len(parts) != s.Heap().NumPartitions() {
		t.Fatalf("got %d partition rows, heap has %d", len(parts), s.Heap().NumPartitions())
	}
	var emptyCount int
	var totalUsed, totalLive, totalGarbage int64
	for i, p := range parts {
		if int(p.ID) != i {
			t.Fatalf("row %d has ID %d", i, p.ID)
		}
		if p.UsedBytes != p.LiveBytes+p.GarbageBytes {
			t.Fatalf("partition %d: used %d != live %d + garbage %d",
				p.ID, p.UsedBytes, p.LiveBytes, p.GarbageBytes)
		}
		if p.GarbageBytes < 0 || p.LiveBytes < 0 {
			t.Fatalf("partition %d: negative split %+v", p.ID, p)
		}
		if p.Empty {
			emptyCount++
			if p.UsedBytes != 0 || p.Objects != 0 {
				t.Fatalf("empty partition %d is occupied: %+v", p.ID, p)
			}
		}
		totalUsed += p.UsedBytes
		totalLive += p.LiveBytes
		totalGarbage += p.GarbageBytes
	}
	if emptyCount != 1 {
		t.Fatalf("found %d empty partitions, want 1", emptyCount)
	}
	if totalUsed != s.Heap().OccupiedBytes() {
		t.Fatalf("sum of used %d != occupied %d", totalUsed, s.Heap().OccupiedBytes())
	}
	if totalGarbage == 0 {
		t.Fatal("no garbage anywhere after churn (implausible)")
	}
}

func TestClientServerExtension(t *testing.T) {
	cfg := smallSim(core.NameUpdatedPointer)
	cfg.ClientCachePages = 1 // tiny client cache: lots of network traffic
	res, _, err := RunWorkload(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIOs == 0 {
		t.Fatal("no network transfers recorded")
	}
	if res.DiskTotalIOs == 0 {
		t.Fatal("no server disk operations recorded")
	}
	if res.DiskTotalIOs > res.TotalIOs {
		t.Fatalf("disk ops %d exceed network transfers %d", res.DiskTotalIOs, res.TotalIOs)
	}
	if res.DiskAppIOs+res.DiskGCIOs != res.DiskTotalIOs {
		t.Fatal("disk attribution does not sum")
	}
	if res.Collections == 0 || res.ReclaimedBytes == 0 {
		t.Fatal("collection did not function in client/server mode")
	}

	// Single-tier mode reports no disk split.
	plain, _, err := RunWorkload(smallSim(core.NameUpdatedPointer), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if plain.DiskTotalIOs != 0 {
		t.Fatal("single-tier run reported server disk I/Os")
	}

	// A larger client cache absorbs traffic: fewer network transfers.
	bigger := cfg
	bigger.ClientCachePages = 8
	res2, _, err := RunWorkload(bigger, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalIOs >= res.TotalIOs {
		t.Fatalf("bigger client cache did not reduce network traffic: %d >= %d",
			res2.TotalIOs, res.TotalIOs)
	}
}

func TestClientServerValidation(t *testing.T) {
	cfg := smallSim(core.NameRandom)
	cfg.ClientCachePages = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative client cache accepted")
	}
	cfg.ClientCachePages = 4
	cfg.Replacement = pagebuf.Clock
	if _, err := New(cfg); err == nil {
		t.Fatal("client/server with CLOCK accepted")
	}
}

func TestWarmStartExtension(t *testing.T) {
	cold := smallSim(core.NameUpdatedPointer)
	warm := cold
	warm.WarmStart = true
	coldRes, _, err := RunWorkload(cold, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	warmRes, _, err := RunWorkload(warm, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// The warm window excludes the build phase: fewer events, fewer app
	// I/Os, same end state.
	if warmRes.Events >= coldRes.Events {
		t.Fatalf("warm events %d not below cold %d", warmRes.Events, coldRes.Events)
	}
	if warmRes.AppIOs >= coldRes.AppIOs {
		t.Fatalf("warm app I/Os %d not below cold %d", warmRes.AppIOs, coldRes.AppIOs)
	}
	if warmRes.FinalOccupiedBytes != coldRes.FinalOccupiedBytes {
		t.Fatalf("end states differ: warm %d cold %d",
			warmRes.FinalOccupiedBytes, coldRes.FinalOccupiedBytes)
	}
	if warmRes.FinalLiveBytes != coldRes.FinalLiveBytes {
		t.Fatal("live bytes differ between warm and cold runs of the same trace")
	}
	// Garbage accounting stays coherent in the warm window.
	if warmRes.ReclaimedBytes > warmRes.ActualGarbageBytes {
		t.Fatalf("warm reclaimed %d > actual garbage %d",
			warmRes.ReclaimedBytes, warmRes.ActualGarbageBytes)
	}
	if f := warmRes.FractionReclaimed(); f <= 0 || f > 1 {
		t.Fatalf("warm fraction reclaimed = %v", f)
	}
}

func TestDiskModel(t *testing.T) {
	m := DefaultDiskModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DiskModel{Transfer: 0}).Validate(); err == nil {
		t.Fatal("zero transfer accepted")
	}
	if m.Estimate(0) != 0 {
		t.Fatal("zero ops cost time")
	}
	if m.Estimate(100) != 100*m.PerOp() {
		t.Fatal("Estimate not linear")
	}
	res := Result{AppIOs: 10, GCIOs: 5}
	app, gcTime, total := m.EstimateResult(res)
	if total != app+gcTime || app != m.Estimate(10) || gcTime != m.Estimate(5) {
		t.Fatalf("EstimateResult = (%v,%v,%v)", app, gcTime, total)
	}
	// A modern disk is much faster than the 1993 one.
	if ModernDiskModel().PerOp() >= DefaultDiskModel().PerOp() {
		t.Fatal("modern disk should be faster")
	}
}

func TestTriggerIntervalControlsCollectionCount(t *testing.T) {
	// Metamorphic check: halving the trigger interval on the identical
	// trace roughly doubles the number of collections (within rounding),
	// because collection count = overwrites / interval and overwrites are
	// a property of the trace alone.
	run := func(interval int64) Result {
		cfg := smallSim(core.NameRandom)
		cfg.TriggerOverwrites = interval
		res, _, err := RunWorkload(cfg, smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(20), run(40)
	if a.Overwrites != b.Overwrites {
		t.Fatalf("overwrites differ across trigger settings: %d vs %d (trace not invariant)",
			a.Overwrites, b.Overwrites)
	}
	wantA, wantB := a.Overwrites/20, a.Overwrites/40
	if a.Collections != wantA {
		t.Errorf("interval 20: %d collections, want %d", a.Collections, wantA)
	}
	if b.Collections != wantB {
		t.Errorf("interval 40: %d collections, want %d", b.Collections, wantB)
	}
}

func TestTriggerValidationRequiresOne(t *testing.T) {
	cfg := smallSim(core.NameRandom)
	cfg.TriggerOverwrites = 0
	cfg.TriggerAllocationBytes = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("config with no trigger accepted")
	}
	cfg.GlobalSweepEvery = -1
	cfg.TriggerOverwrites = 10
	if _, err := New(cfg); err == nil {
		t.Fatal("negative GlobalSweepEvery accepted")
	}
}
