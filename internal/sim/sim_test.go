package sim

import (
	"bytes"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/heap"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

// smallWorkload is a fast workload for tests: ~12 partitions at 16 KB
// each, a handful of collections.
func smallWorkload() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.TargetLiveBytes = 60_000
	cfg.TotalAllocBytes = 200_000
	cfg.MinDeletions = 150
	cfg.MeanTreeNodes = 120
	// Scale large leaves down with the 16 KB test partitions.
	cfg.LargeObjectSize = 4096
	cfg.LargeEvery = 160
	return cfg
}

func smallSim(policy string) Config {
	return Config{
		Policy:            policy,
		Seed:              1,
		Heap:              heap.Config{PageSize: 8192, PartitionPages: 2},
		TriggerOverwrites: 20,
	}
}

func TestRunAllPoliciesSmall(t *testing.T) {
	for _, policy := range core.Names() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			cfg := smallSim(policy)
			cfg.Paranoid = true
			res, wl, err := RunWorkload(cfg, smallWorkload())
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != wl.Events {
				t.Errorf("events %d != workload %d", res.Events, wl.Events)
			}
			if res.TotalIOs != res.AppIOs+res.GCIOs {
				t.Errorf("TotalIOs %d != App %d + GC %d", res.TotalIOs, res.AppIOs, res.GCIOs)
			}
			if res.AppIOs == 0 {
				t.Error("no application I/O")
			}
			if res.ActualGarbageBytes <= 0 {
				t.Errorf("ActualGarbageBytes = %d", res.ActualGarbageBytes)
			}
			if res.ReclaimedBytes > res.ActualGarbageBytes {
				t.Errorf("reclaimed %d > actual garbage %d", res.ReclaimedBytes, res.ActualGarbageBytes)
			}
			if f := res.FractionReclaimed(); f < 0 || f > 1 {
				t.Errorf("fraction reclaimed %v outside [0,1]", f)
			}
			if res.MaxOccupiedBytes < res.FinalOccupiedBytes {
				t.Errorf("max occupied %d below final %d", res.MaxOccupiedBytes, res.FinalOccupiedBytes)
			}
			if policy == core.NameNoCollection {
				if res.Collections != 0 || res.GCIOs != 0 || res.ReclaimedBytes != 0 {
					t.Errorf("NoCollection collected: %+v", res)
				}
				if res.MaxOccupiedBytes != res.TotalAllocatedBytes {
					t.Errorf("NoCollection max occupied %d != total allocated %d",
						res.MaxOccupiedBytes, res.TotalAllocatedBytes)
				}
			} else {
				if res.Collections == 0 {
					t.Error("no collections despite trigger")
				}
				if res.GCIOs == 0 {
					t.Error("collections performed no I/O")
				}
				if res.ReclaimedBytes == 0 {
					t.Error("nothing reclaimed")
				}
			}
		})
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() Result {
		res, _, err := RunWorkload(smallSim(core.NameUpdatedPointer), smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRandomPolicyDeterministicPerSimSeed(t *testing.T) {
	run := func(seed int64) Result {
		cfg := smallSim(core.NameRandom)
		cfg.Seed = seed
		res, _, err := RunWorkload(cfg, smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(7) != run(7) {
		t.Fatal("same sim seed diverged")
	}
	if run(7) == run(8) {
		t.Fatal("different sim seeds produced identical results (suspicious)")
	}
}

func TestTraceFileReplayMatchesDirectStreaming(t *testing.T) {
	// Write the workload to a trace file, then replay; the result must be
	// identical to streaming the generator straight into the simulator.
	wlCfg := smallWorkload()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	g, err := workload.New(wlCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := New(smallSim(core.NameUpdatedPointer))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Copy(s, trace.NewReader(&buf)); err != nil {
		t.Fatal(err)
	}
	replayed := s.Finish()

	direct, _, err := RunWorkload(smallSim(core.NameUpdatedPointer), wlCfg)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != direct {
		t.Fatalf("replayed result differs from direct:\n%+v\n%+v", replayed, direct)
	}
}

func TestSampling(t *testing.T) {
	cfg := smallSim(core.NameMostGarbage)
	cfg.SampleEvery = 1000
	res, _, err := RunWorkload(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || res.Series.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	if got := len(res.Series.Names); got != 4 {
		t.Fatalf("series has %d columns", got)
	}
	// Unreclaimed garbage is occupied minus live at each sample.
	for i := range res.Series.X {
		occ, live, garbage := res.Series.Y[0][i], res.Series.Y[1][i], res.Series.Y[2][i]
		if diff := occ - live - garbage; diff > 0.01 || diff < -0.01 {
			t.Fatalf("sample %d: occ %v - live %v != garbage %v", i, occ, live, garbage)
		}
		if garbage < 0 {
			t.Fatalf("sample %d: negative garbage %v", i, garbage)
		}
	}
}

func TestNoSamplingByDefault(t *testing.T) {
	res, _, err := RunWorkload(smallSim(core.NameRandom), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Fatal("series recorded without SampleEvery")
	}
}

func TestRunSeedsAndAggregates(t *testing.T) {
	results, err := RunSeeds(smallSim(core.NameUpdatedPointer), smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Seeds must differ run to run.
	if results[0] == results[1] && results[1] == results[2] {
		t.Fatal("all seeded runs identical")
	}
	agg := Aggregates(results)
	if agg.N != 3 || agg.Policy != core.NameUpdatedPointer {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.TotalIOs.Mean <= 0 || agg.ReclaimedKB.Mean <= 0 {
		t.Fatalf("agg means: %+v", agg)
	}
	if agg.FractionReclaimed.Mean <= 0 || agg.FractionReclaimed.Mean > 100 {
		t.Fatalf("fraction reclaimed %% = %v", agg.FractionReclaimed.Mean)
	}
}

func TestRunSeedsParallelDeterminism(t *testing.T) {
	// Parallel execution must return exactly what sequential per-seed
	// runs produce, in seed order.
	cfg := smallSim(core.NameUpdatedPointer)
	wl := smallWorkload()
	parallel, err := RunSeeds(cfg, wl, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sc, w := cfg, wl
		w.Seed = wl.Seed + int64(i)
		sc.Seed = cfg.Seed + 1000 + int64(i)
		want, _, err := RunWorkload(sc, w)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i] != want {
			t.Fatalf("seed %d: parallel result differs:\n%+v\n%+v", i, parallel[i], want)
		}
	}
	again, err := RunSeeds(cfg, wl, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != parallel[i] {
			t.Fatalf("seed %d: rerun differs", i)
		}
	}
}

func TestRunSeedsValidation(t *testing.T) {
	if _, err := RunSeeds(smallSim(core.NameRandom), smallWorkload(), 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestAggregatesMixedPoliciesPanics(t *testing.T) {
	a, _, err := RunWorkload(smallSim(core.NameRandom), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunWorkload(smallSim(core.NameMostGarbage), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-policy aggregate did not panic")
		}
	}()
	Aggregates([]Result{a, b})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Policy: "UpdatedPointer", TriggerOverwrites: 0},
		{Policy: "UpdatedPointer", TriggerOverwrites: -1},
		{Policy: "UpdatedPointer", TriggerOverwrites: 10, BufferPages: -1},
		{Policy: "UpdatedPointer", TriggerOverwrites: 10, SampleEvery: -1},
		{Policy: "UpdatedPointer", TriggerOverwrites: 10, CollectPartitions: -1},
		{Policy: "NoSuchPolicy", TriggerOverwrites: 10},
	}
	for i, cfg := range bad {
		if cfg.Heap.PageSize == 0 {
			cfg.Heap = heap.DefaultConfig()
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEmitAfterFinishFails(t *testing.T) {
	s, err := New(smallSim(core.NameRandom))
	if err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if err := s.Emit(trace.Event{Kind: trace.KindCreate, OID: 1, Size: 100}); err == nil {
		t.Fatal("Emit after Finish accepted")
	}
}

func TestMultiPartitionCollectionExtension(t *testing.T) {
	one := smallSim(core.NameMostGarbage)
	two := one
	two.CollectPartitions = 2
	r1, _, err := RunWorkload(one, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := RunWorkload(two, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Collections <= r1.Collections {
		t.Fatalf("top-2 collection ran %d partition collections vs %d for top-1",
			r2.Collections, r1.Collections)
	}
}

// TestOraclePolicyDominatesRandom checks the fundamental shape on which
// the whole paper rests: MostGarbage reclaims at least as much garbage as
// Random over a few seeds.
func TestOraclePolicyDominatesRandom(t *testing.T) {
	sum := func(policy string) float64 {
		results, err := RunSeeds(smallSim(policy), smallWorkload(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, r := range results {
			total += float64(r.ReclaimedBytes)
		}
		return total
	}
	mg, rnd := sum(core.NameMostGarbage), sum(core.NameRandom)
	if mg < rnd {
		t.Fatalf("MostGarbage reclaimed %v < Random %v", mg, rnd)
	}
}
