package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"odbgc/internal/core"
	"odbgc/internal/workload"
)

// The paper's evaluation is embarrassingly parallel: every (policy,
// configuration, seed) cell of its tables and figures is an independent
// deterministic simulation. The Scheduler flattens an arbitrary set of
// such cells — a whole experiment suite — into one job queue drained by a
// fixed pool of worker goroutines, and shares each workload seed's
// recorded trace between all the simulations that replay it.

// Job is one simulation of a flattened suite: a simulator configuration
// plus the workload configuration whose trace drives it.
type Job struct {
	// Label tags progress lines and error messages, e.g.
	// "tables/Random/seed 3".
	Label string
	// Sim and WL configure the cell.
	Sim Config
	WL  workload.Config
	// Out, when non-nil, receives the result. It must stay valid (and
	// untouched by the caller) until Wait returns.
	Out *Result
}

// Scheduler runs Jobs on a bounded worker pool with deterministic result
// assembly: each job writes into its own Out slot, so results land in
// submission-defined positions regardless of completion order, and Wait
// reports the error of the earliest-submitted failed job.
//
// Submit and Wait are intended for one orchestrating goroutine; the
// workers never touch caller state outside the Out slots.
type Scheduler struct {
	cache   *workload.TraceCache
	notify  func(done, total int64, label string)
	recordf func(Job) RunRecorder

	jobs    chan queuedJob
	workers sync.WaitGroup
	pending sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64

	mu     sync.Mutex
	err    error
	errSeq int64
}

type queuedJob struct {
	Job
	seq int64
	rec RunRecorder
}

// RunRecorder receives one job's run recording: Hooks supplies the
// simulator-side record hooks wired into the job's Config, and Finish is
// invoked with the run's Result once the simulation completes
// successfully (a failed job's recorder is never finished).
// internal/record's Run is the canonical implementation.
type RunRecorder interface {
	Hooks() RecordConfig
	Finish(Result)
}

// NewScheduler starts a pool of worker goroutines; workers <= 0 means
// GOMAXPROCS. cache may be nil, in which case every job generates its own
// workload trace (no sharing); with a cache, each distinct workload
// configuration is generated once and replayed into every job that uses
// it. Close must be called when done.
func NewScheduler(workers int, cache *workload.TraceCache) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{cache: cache, jobs: make(chan queuedJob, 4*workers)}
	for i := 0; i < workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.jobs {
				s.run(j)
			}
		}()
	}
	return s
}

// SetNotify registers a completion callback invoked with the number of
// completed and submitted jobs and the finished job's label. Set it
// before the first Submit. The callback is invoked from worker
// goroutines and must be goroutine-safe (see experiments.Progress.Sync).
func (s *Scheduler) SetNotify(fn func(done, total int64, label string)) { s.notify = fn }

// SetRecordFactory registers a per-job recorder factory invoked on the
// submitting goroutine, in submission order — so recorder creation order
// (and therefore run numbering in a batch recorder) is deterministic no
// matter how the pool interleaves completions. A nil return from the
// factory leaves that job unrecorded. Set it before the first Submit.
func (s *Scheduler) SetRecordFactory(fn func(Job) RunRecorder) { s.recordf = fn }

// Submitted and Completed report queue counters.
func (s *Scheduler) Submitted() int64 { return s.submitted.Load() }
func (s *Scheduler) Completed() int64 { return s.completed.Load() }

// Submit enqueues one job. Jobs whose Config.PolicyImpl is a shared
// mutable instance run synchronously on the caller's goroutine, in
// submission order — a shared instance admits no concurrency — unless the
// policy implements core.ClonablePolicy, in which case each job runs an
// independent clone on the pool. Submit may block when the queue is full.
func (s *Scheduler) Submit(job Job) {
	seq := s.submitted.Add(1)
	s.pending.Add(1)
	var rec RunRecorder
	if s.recordf != nil {
		if rec = s.recordf(job); rec != nil {
			job.Sim.Record = rec.Hooks()
		}
	}
	if job.Sim.PolicyImpl != nil {
		c, ok := job.Sim.PolicyImpl.(core.ClonablePolicy)
		if !ok {
			s.run(queuedJob{job, seq, rec}) // serial fallback
			return
		}
		job.Sim.PolicyImpl = c.Clone()
	}
	s.jobs <- queuedJob{job, seq, rec}
}

// SubmitSeeds enqueues the n derived-seed runs of one configuration the
// way the paper averages each cell: workload seed base+i, simulator seed
// base+1000+i. out must have length n; out[i] receives seed i's result.
func (s *Scheduler) SubmitSeeds(label string, simCfg Config, wlCfg workload.Config, n int, out []Result) {
	for i := 0; i < n; i++ {
		wl, sc := wlCfg, simCfg
		wl.Seed += int64(i)
		sc.Seed += 1000 + int64(i)
		s.Submit(Job{
			Label: fmt.Sprintf("%s/seed %d", label, i),
			Sim:   sc, WL: wl, Out: &out[i],
		})
	}
}

func (s *Scheduler) run(j queuedJob) {
	defer s.pending.Done()
	res, err := s.execute(j.Job)
	if err != nil {
		s.mu.Lock()
		if s.err == nil || j.seq < s.errSeq {
			s.err, s.errSeq = fmt.Errorf("sim: job %s: %w", j.Label, err), j.seq
		}
		s.mu.Unlock()
	} else {
		if j.rec != nil {
			j.rec.Finish(res)
		}
		if j.Out != nil {
			*j.Out = res
		}
	}
	done := s.completed.Add(1)
	if s.notify != nil {
		s.notify(done, s.submitted.Load(), j.Label)
	}
}

func (s *Scheduler) execute(job Job) (Result, error) {
	if s.cache == nil {
		res, _, err := RunWorkload(job.Sim, job.WL)
		return res, err
	}
	rt, err := s.cache.Get(job.WL)
	if err != nil {
		return Result{}, err
	}
	return RunRecorded(job.Sim, rt)
}

// Wait blocks until every job submitted so far has finished, then
// returns the error of the earliest-submitted failed job, if any. More
// jobs may be submitted after Wait returns.
func (s *Scheduler) Wait() error {
	s.pending.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close shuts the worker pool down and waits for the workers to exit.
// Submit must not be called after Close.
func (s *Scheduler) Close() {
	close(s.jobs)
	s.workers.Wait()
}
